package defense

import (
	"antidope/internal/netlb"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// Token is the network-side baseline of Table 2: a power-based token bucket
// at the load balancer that admits requests against the cluster's dynamic
// power budget and discards the excess. It keeps latency short for the
// traffic it admits — by abandoning a large share of the packages
// (Section 6.3) — and it cannot tell attack power from legitimate power.
type Token struct {
	bucket *netlb.PowerTokenBucket
	model  power.Model
}

// NewToken builds the baseline; the bucket is sized in Setup, when the
// cluster's budget is known.
func NewToken() *Token { return &Token{} }

// Name implements Scheme.
func (t *Token) Name() string { return "Token" }

// Setup implements Scheme: the refill rate is the dynamic power budget —
// what the cluster may spend above its idle floor — and the burst is a few
// seconds of it.
func (t *Token) Setup(env *Env) {
	t.model = env.Model
	idle := 0.0
	for _, s := range env.Cluster.Servers {
		idle += s.Model.Idle(s.Model.Ladder.Max)
	}
	dynBudget := env.Cluster.BudgetW - idle
	if dynBudget < 1 {
		dynBudget = 1
	}
	t.bucket = netlb.NewPowerTokenBucket(dynBudget, 3*dynBudget)
	t.bucket.SetObserver(env.Obs)
}

// Admit implements Scheme: spend the request's expected dynamic energy.
func (t *Token) Admit(now float64, req *workload.Request) bool {
	return t.bucket.Admit(now, req, netlb.EnergyCost(req.Class, t.model))
}

// ControlSlot implements Scheme: Token manages traffic, not frequencies or
// batteries.
func (t *Token) ControlSlot(now float64, env *Env) SlotReport { return SlotReport{} }

// DropFraction exposes the bucket's abandonment rate for the evaluation.
func (t *Token) DropFraction() float64 {
	if t.bucket == nil {
		return 0
	}
	return t.bucket.DropFraction()
}

// CloneScheme implements Cloner: the bucket's credit state is copied so the
// fork keeps shaping from where the original stood.
func (t *Token) CloneScheme() Scheme {
	c := *t
	if t.bucket != nil {
		c.bucket = t.bucket.Clone()
	}
	return &c
}

var _ Scheme = (*Token)(nil)
var _ Cloner = (*Token)(nil)
