package defense

import (
	"antidope/internal/netlb"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// Hybrid composes Anti-DOPE's PDF/RPM pipeline with a power token bucket in
// front of the suspect pool only — the combination Section 5.4 gestures at:
// rate limiting cannot replace request-aware power management, but once PDF
// has concentrated the risky traffic, shedding the suspect pool's excess at
// the door is safe because, by construction, almost none of it is
// legitimate. Innocent-pool traffic is never shed.
type Hybrid struct {
	*AntiDope
	bucket      *netlb.PowerTokenBucket
	model       power.Model
	suspectURLs map[string]bool
	// SuspectBudgetFrac is the share of the cluster's dynamic budget the
	// suspect pool's admissions may consume.
	SuspectBudgetFrac float64
}

// NewHybrid builds the combined scheme.
func NewHybrid(ladder power.Ladder) *Hybrid {
	return &Hybrid{
		AntiDope:          NewAntiDope(ladder),
		SuspectBudgetFrac: 0.35,
	}
}

// Name implements Scheme.
func (h *Hybrid) Name() string { return "Hybrid" }

// Setup implements Scheme: Anti-DOPE setup plus the suspect-pool bucket.
func (h *Hybrid) Setup(env *Env) {
	h.AntiDope.Setup(env)
	h.model = env.Model
	idle := 0.0
	for _, s := range env.Cluster.Servers {
		idle += s.Model.Idle(s.Model.Ladder.Max)
	}
	dynBudget := env.Cluster.BudgetW - idle
	if dynBudget < 1 {
		dynBudget = 1
	}
	share := dynBudget * h.SuspectBudgetFrac
	h.bucket = netlb.NewPowerTokenBucket(share, 3*share)
	h.suspectURLs = make(map[string]bool)
	for _, u := range netlb.BuildSuspectList(h.SuspectFrac) {
		h.suspectURLs[u] = true
	}
}

// Admit implements Scheme: suspect-listed URLs pass through the bucket;
// everything else is admitted unconditionally.
func (h *Hybrid) Admit(now float64, req *workload.Request) bool {
	if h.bucket == nil || !h.suspectURLs[req.URL] {
		return true
	}
	return h.bucket.Admit(now, req, netlb.EnergyCost(req.Class, h.model))
}

// DropFraction exposes the suspect-pool shed rate.
func (h *Hybrid) DropFraction() float64 {
	if h.bucket == nil {
		return 0
	}
	return h.bucket.DropFraction()
}

// CloneScheme implements Cloner: clones the embedded Anti-DOPE state and the
// suspect-pool bucket, and copies the URL set.
func (h *Hybrid) CloneScheme() Scheme {
	c := *h
	c.AntiDope = h.AntiDope.CloneScheme().(*AntiDope)
	if h.bucket != nil {
		c.bucket = h.bucket.Clone()
	}
	if h.suspectURLs != nil {
		c.suspectURLs = make(map[string]bool, len(h.suspectURLs))
		for u, v := range h.suspectURLs {
			c.suspectURLs[u] = v
		}
	}
	return &c
}

var _ Scheme = (*Hybrid)(nil)
var _ Cloner = (*Hybrid)(nil)
