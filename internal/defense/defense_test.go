package defense

import (
	"math"
	"testing"

	"antidope/internal/cluster"
	"antidope/internal/netlb"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// testEnv builds a 4-server Medium-PB cluster saturated with the given
// class so Overshoot() is positive.
func testEnv(t *testing.T, budget cluster.BudgetLevel, saturate workload.Class) *Env {
	t.Helper()
	cfg := cluster.DefaultConfig()
	cfg.Budget = budget
	cl := cluster.MustNew(cfg)
	if saturate.Valid() {
		id := uint64(0)
		for _, s := range cl.Servers {
			s.Advance(0)
			for i := 0; i < 8; i++ {
				id++
				s.Admit(0, &workload.Request{ID: id, Class: saturate, Demand: 1e6, Remaining: 1e6})
			}
		}
	}
	bal := netlb.MustNew(cl.Servers, netlb.LeastLoaded)
	return &Env{Cluster: cl, Balancer: bal, SlotSec: 1, Model: power.DefaultModel()}
}

func req(class workload.Class) *workload.Request {
	p := workload.Lookup(class)
	return &workload.Request{Class: class, URL: p.URL, Demand: p.MeanDemand, Remaining: p.MeanDemand}
}

func TestRegistry(t *testing.T) {
	ladder := power.DefaultLadder()
	for _, name := range []string{"none", "Capping", "shaving", "TOKEN", "Anti-DOPE", "antidope"} {
		if _, err := ByName(name, ladder); err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("magic", ladder); err == nil {
		t.Fatal("unknown scheme resolved")
	}
	evaluated := Evaluated(ladder)
	if len(evaluated) != 4 {
		t.Fatal("Evaluated should return the four Table 2 schemes")
	}
	wantNames := []string{"Capping", "Shaving", "Token", "Anti-DOPE"}
	for i, s := range evaluated {
		if s.Name() != wantNames[i] {
			t.Fatalf("scheme %d named %q, want %q", i, s.Name(), wantNames[i])
		}
	}
}

func TestNoneDoesNothing(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	n := NewNone()
	n.Setup(env)
	if !n.Admit(0, req(workload.CollaFilt)) {
		t.Fatal("None refused a request")
	}
	before := env.Cluster.PowerNow()
	n.ControlSlot(1, env)
	if env.Cluster.PowerNow() != before {
		t.Fatal("None changed the operating point")
	}
	if env.Cluster.UPS.SoC() != 1 {
		t.Fatal("None touched the battery")
	}
}

func TestCappingBringsPowerUnderBudget(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	c := NewCapping(power.DefaultLadder())
	c.Setup(env)
	if env.Cluster.Overshoot() <= 0 {
		t.Fatal("test premise: cluster must overshoot")
	}
	// A few slots of control converge under the budget.
	for slot := 1; slot <= 10; slot++ {
		c.ControlSlot(float64(slot), env)
	}
	if over := env.Cluster.Overshoot(); over > 1e-6 {
		t.Fatalf("still %g W over budget after capping", over)
	}
	if env.Cluster.UPS.SoC() != 1 {
		t.Fatal("Capping used the battery")
	}
	if env.Cluster.MeanVFReduction() <= 0 {
		t.Fatal("capping did not reduce V/F")
	}
}

func TestCappingReleasesWhenLoadGone(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	c := NewCapping(power.DefaultLadder())
	c.Setup(env)
	for slot := 1; slot <= 10; slot++ {
		c.ControlSlot(float64(slot), env)
	}
	// Drain the cluster: advance far enough that everything completes.
	for _, s := range env.Cluster.Servers {
		for {
			at, ok := s.NextCompletion()
			if !ok {
				break
			}
			s.Advance(at)
		}
	}
	for slot := 11; slot <= 60; slot++ {
		c.ControlSlot(float64(slot), env)
	}
	if got := env.Cluster.MeanFreq(); float64(got) < 2.3 {
		t.Fatalf("frequencies not released after load drained: %v", got)
	}
}

func TestKMeansNeedsDeeperCut(t *testing.T) {
	// The Fig. 6-b mechanism end-to-end: capping a K-means-saturated
	// cluster requires more V/F reduction than a Colla-Filt-saturated one,
	// because K-means power barely falls with frequency.
	reduction := func(class workload.Class) float64 {
		env := testEnv(t, cluster.MediumPB, class)
		c := NewCapping(power.DefaultLadder())
		c.Setup(env)
		for slot := 1; slot <= 15; slot++ {
			c.ControlSlot(float64(slot), env)
		}
		return env.Cluster.MeanVFReduction()
	}
	km := reduction(workload.KMeans)
	cf := reduction(workload.CollaFilt)
	if km <= cf {
		t.Fatalf("K-means V/F reduction %g <= Colla-Filt %g", km, cf)
	}
}

func TestShavingUsesBatteryFirst(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	s := NewShaving(power.DefaultLadder())
	s.Setup(env)
	rep := s.ControlSlot(1, env)
	if rep.BatteryW <= 0 {
		t.Fatal("Shaving did not discharge the battery")
	}
	if env.Cluster.MeanVFReduction() > 0 {
		t.Fatal("Shaving throttled while the battery could still shave")
	}
	if env.Cluster.UPS.SoC() >= 1 {
		t.Fatal("battery level unchanged")
	}
}

func TestShavingFallsBackToDVFSWhenEmpty(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	env.Cluster.UPS.SetSoC(0)
	s := NewShaving(power.DefaultLadder())
	s.Setup(env)
	for slot := 1; slot <= 10; slot++ {
		s.ControlSlot(float64(slot), env)
	}
	if env.Cluster.MeanVFReduction() <= 0 {
		t.Fatal("empty battery but no DVFS fallback")
	}
	if over := env.Cluster.Overshoot(); over > 1e-6 {
		t.Fatalf("still over budget: %g", over)
	}
}

func TestShavingRechargesUnderHeadroom(t *testing.T) {
	env := testEnv(t, cluster.NormalPB, workload.Class(-1)) // idle cluster
	env.Cluster.UPS.SetSoC(0.5)
	s := NewShaving(power.DefaultLadder())
	s.Setup(env)
	rep := s.ControlSlot(1, env)
	if rep.ChargeW <= 0 {
		t.Fatal("no recharge despite headroom")
	}
	if env.Cluster.UPS.SoC() <= 0.5 {
		t.Fatal("battery level did not rise")
	}
}

func TestTokenSizedToBudgetAndDrops(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.Class(-1))
	tok := NewToken()
	tok.Setup(env)
	// Flood admissions at time 0: the burst drains and refusals start.
	admitted, refused := 0, 0
	for i := 0; i < 10000; i++ {
		r := req(workload.CollaFilt)
		if tok.Admit(0, r) {
			admitted++
		} else {
			refused++
			if !r.Dropped || r.DropReason != "token-bucket" {
				t.Fatal("refusal not marked")
			}
		}
	}
	if admitted == 0 || refused == 0 {
		t.Fatalf("admitted %d refused %d", admitted, refused)
	}
	if tok.DropFraction() <= 0 {
		t.Fatal("drop fraction not reported")
	}
	// Control slot is a no-op.
	rep := tok.ControlSlot(1, env)
	if rep.BatteryW != 0 || rep.ChargeW != 0 {
		t.Fatal("Token touched the battery")
	}
}

func TestTokenDropFractionZeroBeforeSetup(t *testing.T) {
	if NewToken().DropFraction() != 0 {
		t.Fatal("unsized token bucket reports drops")
	}
}

func TestAntiDopeSetupPartitions(t *testing.T) {
	env := testEnv(t, cluster.MediumPB, workload.Class(-1))
	a := NewAntiDope(power.DefaultLadder())
	a.Setup(env)
	sus, inn := env.Cluster.SuspectServers()
	if len(sus) != 1 || len(inn) != 3 {
		t.Fatalf("suspect pool %d/%d, want 1/3 of 4 servers", len(sus), len(inn))
	}
	if !env.Balancer.SplitActive() {
		t.Fatal("PDF split not active after setup")
	}
	list := env.Balancer.SuspectList()
	if len(list) == 0 {
		t.Fatal("empty suspect list")
	}
}

func TestAntiDopeThrottlesSuspectsOnly(t *testing.T) {
	env := testEnv(t, cluster.MediumPB, workload.Class(-1))
	a := NewAntiDope(power.DefaultLadder())
	a.Setup(env)
	// Saturate only the suspect server with Colla-Filt (as PDF would).
	sus, inn := env.Cluster.SuspectServers()
	id := uint64(0)
	for _, s := range env.Cluster.Servers {
		s.Advance(0)
		n := 2
		if s.Suspect {
			n = 12
		}
		for i := 0; i < n; i++ {
			id++
			s.Admit(0, &workload.Request{ID: id, Class: workload.CollaFilt, Demand: 1e6, Remaining: 1e6})
		}
	}
	// Force an overshoot by shrinking the budget to just below the draw.
	env.Cluster.BudgetW = env.Cluster.PowerNow() - 20
	env.Cluster.UPS.SetSoC(0.1)
	for slot := 1; slot <= 10; slot++ {
		a.ControlSlot(float64(slot), env)
	}
	for _, s := range inn {
		if s.Freq() < 2.4 {
			t.Fatalf("innocent server %d throttled to %v", s.ID, s.Freq())
		}
	}
	throttled := false
	for _, s := range sus {
		if s.Freq() < 2.4 {
			throttled = true
		}
	}
	if !throttled {
		t.Fatal("no suspect server throttled")
	}
	if over := env.Cluster.Overshoot(); over > 1e-6 {
		t.Fatalf("still over budget: %g", over)
	}
	if a.CollateralSlots() != 0 {
		t.Fatalf("collateral slots %d, want 0", a.CollateralSlots())
	}
}

func TestAntiDopeBatteryBridgesTransition(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	a := NewAntiDope(power.DefaultLadder())
	a.Setup(env)
	rep := a.ControlSlot(1, env)
	if rep.BatteryW <= 0 {
		t.Fatal("battery did not bridge the first over-budget slot")
	}
	if a.BridgeSlots() == 0 {
		t.Fatal("bridge counter")
	}
}

func TestAntiDopeSpillsToInnocentWhenSuspectPoolInsufficient(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt) // every server saturated
	a := NewAntiDope(power.DefaultLadder())
	a.Setup(env)
	env.Cluster.UPS.SetSoC(0)
	for slot := 1; slot <= 10; slot++ {
		a.ControlSlot(float64(slot), env)
	}
	if a.CollateralSlots() == 0 {
		t.Fatal("cluster-wide saturation must spill to innocent servers")
	}
	if over := env.Cluster.Overshoot(); over > 1e-6 {
		t.Fatalf("still over budget: %g", over)
	}
}

func TestAntiDopeRecoversInnocentFirst(t *testing.T) {
	env := testEnv(t, cluster.NormalPB, workload.Class(-1))
	a := NewAntiDope(power.DefaultLadder())
	a.Setup(env)
	// Everyone throttled to the floor; cluster idle with full headroom.
	for _, s := range env.Cluster.Servers {
		s.CapFreq(1.2)
	}
	a.ControlSlot(1, env)
	_, inn := env.Cluster.SuspectServers()
	for _, s := range inn {
		if s.Freq() <= 1.2 {
			t.Fatalf("innocent server %d not released first", s.ID)
		}
	}
}

func TestAntiDopeRechargesAfterReconfigure(t *testing.T) {
	env := testEnv(t, cluster.NormalPB, workload.Class(-1))
	a := NewAntiDope(power.DefaultLadder())
	a.Setup(env)
	env.Cluster.UPS.SetSoC(0.3)
	rep := a.ControlSlot(1, env)
	if rep.ChargeW <= 0 {
		t.Fatal("no immediate recharge with headroom available")
	}
}

func TestAntiDopeAdmitsEverything(t *testing.T) {
	a := NewAntiDope(power.DefaultLadder())
	if !a.Admit(0, req(workload.CollaFilt)) {
		t.Fatal("Anti-DOPE refused a request at the door")
	}
}

func TestSchemeNames(t *testing.T) {
	cases := map[string]Scheme{
		"None":      NewNone(),
		"Capping":   NewCapping(power.DefaultLadder()),
		"Shaving":   NewShaving(power.DefaultLadder()),
		"Token":     NewToken(),
		"Anti-DOPE": NewAntiDope(power.DefaultLadder()),
	}
	for want, s := range cases {
		if s.Name() != want {
			t.Fatalf("name %q, want %q", s.Name(), want)
		}
	}
}

func TestVictimOrderingHelpers(t *testing.T) {
	env := testEnv(t, cluster.NormalPB, workload.Class(-1))
	ss := env.Cluster.Servers
	ss[2].Advance(0)
	for i := 0; i < 8; i++ {
		ss[2].Admit(0, &workload.Request{ID: uint64(i + 1), Class: workload.CollaFilt, Demand: 1e6, Remaining: 1e6})
	}
	byPower := serversByPowerDesc(ss)
	if byPower[0].(interface{ PowerNow() float64 }).PowerNow() < byPower[1].(interface{ PowerNow() float64 }).PowerNow() {
		t.Fatal("power ordering")
	}
	ss[1].CapFreq(1.2)
	byFreq := serversByFreqAsc(ss)
	if byFreq[0].Freq() != 1.2 {
		t.Fatal("frequency ordering")
	}
	if math.Abs(float64(byFreq[len(byFreq)-1].Freq())-2.4) > 1e-9 {
		t.Fatal("frequency ordering tail")
	}
}

func TestOracleDropsOnlyAttackTraffic(t *testing.T) {
	o := NewOracle(power.DefaultLadder())
	legit := req(workload.CollaFilt)
	legit.Origin = workload.Legit
	if !o.Admit(0, legit) {
		t.Fatal("oracle dropped a legitimate request")
	}
	atk := req(workload.CollaFilt)
	atk.Origin = workload.Attack
	if o.Admit(0, atk) {
		t.Fatal("oracle admitted an attack request")
	}
	if !atk.Dropped || atk.DropReason != "oracle" {
		t.Fatal("oracle drop not marked")
	}
	if o.Dropped() != 1 {
		t.Fatalf("dropped %d", o.Dropped())
	}
}

func TestOracleCapsResidualPeaks(t *testing.T) {
	env := testEnv(t, cluster.LowPB, workload.CollaFilt)
	o := NewOracle(power.DefaultLadder())
	o.Setup(env)
	for slot := 1; slot <= 10; slot++ {
		o.ControlSlot(float64(slot), env)
	}
	if over := env.Cluster.Overshoot(); over > 1e-6 {
		t.Fatalf("oracle left %g W over budget", over)
	}
}

func TestOracleInRegistry(t *testing.T) {
	s, err := ByName("oracle", power.DefaultLadder())
	if err != nil || s.Name() != "Oracle" {
		t.Fatalf("oracle registry: %v %v", s, err)
	}
}

func TestHybridShedsOnlySuspectTraffic(t *testing.T) {
	env := testEnv(t, cluster.MediumPB, workload.Class(-1))
	h := NewHybrid(power.DefaultLadder())
	h.Setup(env)
	if h.Name() != "Hybrid" {
		t.Fatal("name")
	}
	// Innocent-endpoint traffic is never shed, no matter the volume.
	for i := 0; i < 5000; i++ {
		if !h.Admit(0, req(workload.AliNormal)) {
			t.Fatal("hybrid shed innocent traffic")
		}
	}
	// Suspect-listed traffic drains the bucket and starts shedding.
	shed := false
	for i := 0; i < 5000; i++ {
		if !h.Admit(0, req(workload.CollaFilt)) {
			shed = true
			break
		}
	}
	if !shed {
		t.Fatal("hybrid never shed suspect traffic at time zero")
	}
	if h.DropFraction() <= 0 {
		t.Fatal("drop fraction not reported")
	}
}

func TestHybridBeforeSetupAdmitsAll(t *testing.T) {
	h := NewHybrid(power.DefaultLadder())
	if !h.Admit(0, req(workload.CollaFilt)) {
		t.Fatal("unset bucket refused traffic")
	}
	if h.DropFraction() != 0 {
		t.Fatal("drop fraction before setup")
	}
}

func TestHybridInRegistry(t *testing.T) {
	s, err := ByName("hybrid", power.DefaultLadder())
	if err != nil || s.Name() != "Hybrid" {
		t.Fatalf("hybrid registry: %v %v", s, err)
	}
}
