package defense

import (
	"antidope/internal/power"
	"antidope/internal/workload"
)

// Shaving is the state-of-the-art baseline: the UPS shaves power peaks, and
// DVFS only engages once the battery is exhausted. Designed for the
// occasional benign utilization peak, it is exactly the design DOPE's long
// stealthy peaks drain dry (Figure 18, blue line).
type Shaving struct {
	gov power.Governor
}

// NewShaving builds the baseline over the given ladder.
func NewShaving(ladder power.Ladder) *Shaving {
	return &Shaving{gov: power.DefaultGovernor(ladder)}
}

// Name implements Scheme.
func (s *Shaving) Name() string { return "Shaving" }

// Setup implements Scheme.
func (s *Shaving) Setup(env *Env) {}

// Admit implements Scheme; shaving never refuses traffic.
func (s *Shaving) Admit(now float64, req *workload.Request) bool { return true }

// ControlSlot implements Scheme: battery first, DVFS as the last resort,
// recharge whenever there is budget headroom.
func (s *Shaving) ControlSlot(now float64, env *Env) SlotReport {
	cl := env.Cluster
	dt := env.SlotSec
	if over := env.Overshoot(); over > 0 {
		got := cl.UPS.Discharge(over, dt)
		if remaining := over - got; remaining > 1e-9 {
			// Battery exhausted (or inverter-limited): throttle the rest.
			s.gov.ThrottleOrdered(remaining, serversByPowerDesc(cl.Servers), predict)
		}
		return SlotReport{BatteryW: got}
	}

	head := env.Headroom()
	hyst := s.gov.UpHysteresis * cl.BudgetW
	var charge float64
	if head > hyst {
		spend := head - hyst
		// Restore performance before banking energy: users first.
		added := s.gov.Release(spend, serversByFreqAsc(cl.Servers), predict)
		if left := spend - added; left > 1e-9 {
			charge = cl.UPS.Charge(left, dt)
		}
	}
	return SlotReport{ChargeW: charge}
}

// CloneScheme implements Cloner; the governor is a plain value.
func (s *Shaving) CloneScheme() Scheme {
	cp := *s
	return &cp
}

var _ Scheme = (*Shaving)(nil)
var _ Cloner = (*Shaving)(nil)
