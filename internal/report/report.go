// Package report renders simulation results for humans and downstream
// tools: a Markdown report for one run, a side-by-side comparison of
// several runs, and CSV export of the time series for external plotting.
// The CLIs expose these through their -report/-csv flags.
package report

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"antidope/internal/core"
	"antidope/internal/stats"
)

// Markdown writes a full single-run report.
func Markdown(w io.Writer, title string, res *core.Result) error {
	p := func(format string, args ...any) {
		fmt.Fprintf(w, format, args...)
	}
	p("# %s\n\n", title)
	p("Scheme **%s**, budget %.0f W of %.0f W nameplate, horizon %.0f s.\n\n",
		res.SchemeName, res.BudgetW, res.NameplateW, res.Horizon)

	p("## Service\n\n")
	p("| metric | value |\n|---|---|\n")
	p("| legitimate offered | %d |\n", res.OfferedLegit)
	p("| legitimate completed | %d |\n", res.CompletedLegit)
	p("| availability | %.4f |\n", res.Availability())
	p("| mean response time | %.1f ms |\n", 1e3*res.MeanRT())
	p("| p90 / p95 / p99 | %.1f / %.1f / %.1f ms |\n",
		1e3*res.TailRT(90), 1e3*res.TailRT(95), 1e3*res.TailRT(99))
	p("| attack offered / completed | %d / %d |\n", res.OfferedAttack, res.CompletedAtk)
	if len(res.DroppedByReason) > 0 {
		reasons := make([]string, 0, len(res.DroppedByReason))
		for k := range res.DroppedByReason {
			reasons = append(reasons, k)
		}
		sort.Strings(reasons)
		var parts []string
		for _, k := range reasons {
			parts = append(parts, fmt.Sprintf("%s %d", k, res.DroppedByReason[k]))
		}
		p("| drops | %s |\n", strings.Join(parts, ", "))
	}
	p("\n## Power and energy\n\n")
	p("| metric | value |\n|---|---|\n")
	p("| peak power | %.1f W |\n", res.PeakPowerW())
	p("| slots over budget | %.1f%% |\n", 100*res.FracSlotsOverBudget)
	p("| over-budget energy | %.1f kJ |\n", res.OverBudgetJ/1e3)
	p("| utility energy | %.1f kJ |\n", res.UtilityEnergyJ/1e3)
	p("| battery energy | %.1f kJ (min SoC %.2f, %d cycles) |\n",
		res.BatteryEnergyJ/1e3, res.MinBatterySoC(), res.BatteryCycles)
	if res.Outages > 0 {
		p("| **outages** | %d trips, %.0f s downtime |\n", res.Outages, res.OutageSeconds)
	}

	if len(res.DopeTrace) > 0 {
		p("\n## Adaptive attacker\n\n")
		p("| t(s) | class | req/s | agents | banned | effective |\n|---|---|---|---|---|---|\n")
		for i, e := range res.DopeTrace {
			if i > 6 && i%4 != 0 && i != len(res.DopeTrace)-1 {
				continue
			}
			p("| %.0f | %v | %.0f | %d | %d | %v |\n",
				e.At, e.Class, e.RPS, e.Agents, e.Banned, e.Effective)
		}
	}

	p("\n## Power trajectory (downsampled)\n\n")
	p("| t(s) | power (W) | battery SoC | mean GHz |\n|---|---|---|---|\n")
	pw := res.Power.Downsample(20)
	bt := res.Battery.Downsample(20)
	fq := res.Freq.Downsample(20)
	for i := range pw.Points {
		soc, ghz := 0.0, 0.0
		if i < len(bt.Points) {
			soc = bt.Points[i].V
		}
		if i < len(fq.Points) {
			ghz = fq.Points[i].V
		}
		p("| %.0f | %.1f | %.3f | %.2f |\n", pw.Points[i].T, pw.Points[i].V, soc, ghz)
	}
	return nil
}

// Compare writes a side-by-side Markdown table over several labelled runs.
func Compare(w io.Writer, title string, labels []string, results []*core.Result) error {
	if len(labels) != len(results) {
		return fmt.Errorf("report: %d labels for %d results", len(labels), len(results))
	}
	fmt.Fprintf(w, "# %s\n\n", title)
	fmt.Fprintf(w, "| metric |")
	for _, l := range labels {
		fmt.Fprintf(w, " %s |", l)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(labels)))

	row := func(name string, get func(*core.Result) string) {
		fmt.Fprintf(w, "| %s |", name)
		for _, r := range results {
			fmt.Fprintf(w, " %s |", get(r))
		}
		fmt.Fprintln(w)
	}
	row("mean RT (ms)", func(r *core.Result) string { return fmt.Sprintf("%.1f", 1e3*r.MeanRT()) })
	row("p90 RT (ms)", func(r *core.Result) string { return fmt.Sprintf("%.1f", 1e3*r.TailRT(90)) })
	row("p99 RT (ms)", func(r *core.Result) string { return fmt.Sprintf("%.1f", 1e3*r.TailRT(99)) })
	row("availability", func(r *core.Result) string { return fmt.Sprintf("%.4f", r.Availability()) })
	row("peak power (W)", func(r *core.Result) string { return fmt.Sprintf("%.1f", r.PeakPowerW()) })
	row("slots over budget", func(r *core.Result) string {
		return fmt.Sprintf("%.1f%%", 100*r.FracSlotsOverBudget)
	})
	row("utility energy (kJ)", func(r *core.Result) string {
		return fmt.Sprintf("%.1f", r.UtilityEnergyJ/1e3)
	})
	row("battery min SoC", func(r *core.Result) string { return fmt.Sprintf("%.2f", r.MinBatterySoC()) })
	row("outages", func(r *core.Result) string { return fmt.Sprintf("%d", r.Outages) })
	return nil
}

// CSV writes one or more aligned time series as comma-separated values with
// a header row: t,name1,name2,... Series are sampled onto the first
// series' timestamps by sample-and-hold.
func CSV(w io.Writer, names []string, series []stats.Series) error {
	if len(names) != len(series) || len(series) == 0 {
		return fmt.Errorf("report: %d names for %d series", len(names), len(series))
	}
	fmt.Fprintf(w, "t,%s\n", strings.Join(names, ","))
	base := series[0]
	idx := make([]int, len(series))
	for _, p := range base.Points {
		fmt.Fprintf(w, "%.3f", p.T)
		for si := range series {
			s := series[si]
			for idx[si]+1 < len(s.Points) && s.Points[idx[si]+1].T <= p.T {
				idx[si]++
			}
			v := 0.0
			if len(s.Points) > 0 {
				v = s.Points[idx[si]].V
			}
			fmt.Fprintf(w, ",%.6g", v)
		}
		fmt.Fprintln(w)
	}
	return nil
}
