package report

import (
	"encoding/json"
	"strings"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/stats"
	"antidope/internal/workload"
)

func sampleResult(t *testing.T) *core.Result {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Horizon = 40
	cfg.WarmupSec = 5
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 60, 16, 10, 25),
	}
	d := attack.DefaultDopeConfig()
	cfg.Dope = &d
	cfg.DopeStart = 5
	res, err := core.RunOnce(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMarkdownContainsSections(t *testing.T) {
	res := sampleResult(t)
	var sb strings.Builder
	if err := Markdown(&sb, "Test Run", res); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Test Run",
		"## Service",
		"## Power and energy",
		"## Adaptive attacker",
		"## Power trajectory",
		"availability",
		"mean response time",
		"peak power",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("markdown missing %q", want)
		}
	}
	// Tables must be well-formed: every table line starts and ends with |.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "|") && !strings.HasSuffix(line, "|") {
			t.Fatalf("broken table row: %q", line)
		}
	}
}

func TestCompareAligns(t *testing.T) {
	a := sampleResult(t)
	var sb strings.Builder
	if err := Compare(&sb, "Cmp", []string{"run-a", "run-b"}, []*core.Result{a, a}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "run-a") || !strings.Contains(out, "run-b") {
		t.Fatal("labels missing")
	}
	// Every metric row has exactly len(labels)+2 pipe-separated fields.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "| mean RT") {
			if got := strings.Count(line, "|"); got != 4 {
				t.Fatalf("row has %d pipes: %q", got, line)
			}
		}
	}
}

func TestCompareRejectsMismatch(t *testing.T) {
	var sb strings.Builder
	if err := Compare(&sb, "x", []string{"one"}, nil); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}

func TestCSV(t *testing.T) {
	var a, b stats.Series
	for i := 0; i < 5; i++ {
		a.Add(float64(i), float64(i)*10)
		b.Add(float64(i), float64(i)*100)
	}
	var sb strings.Builder
	if err := CSV(&sb, []string{"power", "soc"}, []stats.Series{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "t,power,soc" {
		t.Fatalf("header %q", lines[0])
	}
	if len(lines) != 6 {
		t.Fatalf("%d lines, want 6", len(lines))
	}
	if !strings.HasPrefix(lines[3], "2.000,20,200") {
		t.Fatalf("row %q", lines[3])
	}
}

func TestCSVSampleAndHold(t *testing.T) {
	var a, b stats.Series
	a.Add(0, 1)
	a.Add(1, 2)
	a.Add(2, 3)
	b.Add(0, 10) // b only has one point: held for all timestamps
	var sb strings.Builder
	if err := CSV(&sb, []string{"a", "b"}, []stats.Series{a, b}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	for _, line := range lines[1:] {
		if !strings.HasSuffix(line, ",10") {
			t.Fatalf("hold failed: %q", line)
		}
	}
}

func TestCSVRejectsMismatch(t *testing.T) {
	var sb strings.Builder
	if err := CSV(&sb, []string{"a"}, nil); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	res := sampleResult(t)
	var sb strings.Builder
	if err := JSON(&sb, res, 10); err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("invalid json: %v", err)
	}
	if back.Scheme != res.SchemeName {
		t.Fatalf("scheme %q", back.Scheme)
	}
	if back.Availability != res.Availability() {
		t.Fatal("availability mismatch")
	}
	if len(back.PowerSeries) == 0 || len(back.PowerSeries) > 10 {
		t.Fatalf("power series %d points", len(back.PowerSeries))
	}
	if len(back.DopeTrace) == 0 {
		t.Fatal("dope trace missing")
	}
	if back.DopeTrace[0].Class == "" {
		t.Fatal("dope class not stringified")
	}
}

func TestSummarizeOmitsSeries(t *testing.T) {
	res := sampleResult(t)
	s := Summarize(res, 0)
	if s.PowerSeries != nil || s.BatterySeries != nil {
		t.Fatal("series not omitted")
	}
}
