package report

import (
	"encoding/json"
	"io"

	"antidope/internal/core"
	"antidope/internal/stats"
)

// Summary is the machine-readable projection of a Result: scalar metrics
// plus downsampled series, stable field names, JSON-encodable. External
// dashboards and regression tooling consume this instead of scraping the
// human-readable output.
type Summary struct {
	Scheme     string  `json:"scheme"`
	BudgetW    float64 `json:"budget_w"`
	NameplateW float64 `json:"nameplate_w"`
	HorizonSec float64 `json:"horizon_sec"`

	OfferedLegit   uint64  `json:"offered_legit"`
	CompletedLegit uint64  `json:"completed_legit"`
	Availability   float64 `json:"availability"`
	MeanRTMs       float64 `json:"mean_rt_ms"`
	P90RTMs        float64 `json:"p90_rt_ms"`
	P95RTMs        float64 `json:"p95_rt_ms"`
	P99RTMs        float64 `json:"p99_rt_ms"`

	OfferedAttack   uint64            `json:"offered_attack"`
	CompletedAttack uint64            `json:"completed_attack"`
	DroppedByReason map[string]uint64 `json:"dropped_by_reason,omitempty"`

	PeakPowerW          float64 `json:"peak_power_w"`
	FracSlotsOverBudget float64 `json:"frac_slots_over_budget"`
	OverBudgetKJ        float64 `json:"over_budget_kj"`
	UtilityEnergyKJ     float64 `json:"utility_energy_kj"`
	BatteryEnergyKJ     float64 `json:"battery_energy_kj"`
	MinBatterySoC       float64 `json:"min_battery_soc"`
	BatteryCycles       int     `json:"battery_cycles"`
	Outages             int     `json:"outages"`
	OutageSeconds       float64 `json:"outage_seconds"`
	TokenDropFrac       float64 `json:"token_drop_frac,omitempty"`

	// Network-condition ledger; zero (and hence omitted) on every run
	// without network fault windows.
	NetLost     uint64 `json:"net_lost,omitempty"`
	NetRetried  uint64 `json:"net_retried,omitempty"`
	NetTimedOut uint64 `json:"net_timed_out,omitempty"`

	PowerSeries   []SeriesPoint `json:"power_series,omitempty"`
	BatterySeries []SeriesPoint `json:"battery_series,omitempty"`

	DopeTrace []DopePoint `json:"dope_trace,omitempty"`
}

// SeriesPoint is one (t, value) pair.
type SeriesPoint struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// DopePoint is one adaptive-attacker epoch.
type DopePoint struct {
	T         float64 `json:"t"`
	Class     string  `json:"class"`
	RPS       float64 `json:"rps"`
	Agents    int     `json:"agents"`
	Banned    int     `json:"banned"`
	Effective bool    `json:"effective"`
}

// Summarize projects a Result into the JSON shape; seriesPoints bounds the
// exported series lengths (0 omits them).
func Summarize(res *core.Result, seriesPoints int) Summary {
	s := Summary{
		Scheme:     res.SchemeName,
		BudgetW:    res.BudgetW,
		NameplateW: res.NameplateW,
		HorizonSec: res.Horizon,

		OfferedLegit:   res.OfferedLegit,
		CompletedLegit: res.CompletedLegit,
		Availability:   res.Availability(),
		MeanRTMs:       1e3 * res.MeanRT(),
		P90RTMs:        1e3 * res.TailRT(90),
		P95RTMs:        1e3 * res.TailRT(95),
		P99RTMs:        1e3 * res.TailRT(99),

		OfferedAttack:   res.OfferedAttack,
		CompletedAttack: res.CompletedAtk,
		DroppedByReason: res.DroppedByReason,

		PeakPowerW:          res.PeakPowerW(),
		FracSlotsOverBudget: res.FracSlotsOverBudget,
		OverBudgetKJ:        res.OverBudgetJ / 1e3,
		UtilityEnergyKJ:     res.UtilityEnergyJ / 1e3,
		BatteryEnergyKJ:     res.BatteryEnergyJ / 1e3,
		MinBatterySoC:       res.MinBatterySoC(),
		BatteryCycles:       res.BatteryCycles,
		Outages:             res.Outages,
		OutageSeconds:       res.OutageSeconds,
		TokenDropFrac:       res.TokenDropFrac,

		NetLost:     res.NetLost,
		NetRetried:  res.NetRetried,
		NetTimedOut: res.NetTimedOut,
	}
	if seriesPoints > 0 {
		s.PowerSeries = toPoints(res.Power.Downsample(seriesPoints))
		s.BatterySeries = toPoints(res.Battery.Downsample(seriesPoints))
	}
	for _, e := range res.DopeTrace {
		s.DopeTrace = append(s.DopeTrace, DopePoint{
			T: e.At, Class: e.Class.String(), RPS: e.RPS,
			Agents: e.Agents, Banned: e.Banned, Effective: e.Effective,
		})
	}
	return s
}

func toPoints(s stats.Series) []SeriesPoint {
	out := make([]SeriesPoint, 0, len(s.Points))
	for _, p := range s.Points {
		out = append(out, SeriesPoint{T: p.T, V: p.V})
	}
	return out
}

// JSON writes the summary as indented JSON.
func JSON(w io.Writer, res *core.Result, seriesPoints int) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Summarize(res, seriesPoints))
}
