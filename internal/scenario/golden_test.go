package scenario_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"antidope/internal/experiments"
	"antidope/internal/scenario"
)

var update = flag.Bool("update", false, "rewrite testdata/*.golden from the current output")

// scenariosDir is the checked-in scenario library at the repository root.
const scenariosDir = "../../scenarios"

func quickOptions(parallel int) experiments.Options {
	return experiments.Options{Seed: 2019, Quick: true, Parallel: parallel}
}

// firstDiff describes where two outputs diverge, line by line.
func firstDiff(a, b []byte) string {
	al := bytes.Split(a, []byte("\n"))
	bl := bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) || i < len(bl); i++ {
		var av, bv []byte
		if i < len(al) {
			av = al[i]
		}
		if i < len(bl) {
			bv = bl[i]
		}
		if !bytes.Equal(av, bv) {
			return fmt.Sprintf("line %d:\n  a: %q\n  b: %q", i+1, av, bv)
		}
	}
	return "no difference"
}

// TestScenarioLibraryGolden pins every checked-in scenario's quick-mode
// report byte-for-byte, and requires the library to pass its own
// acceptance checks. Regenerate deliberately with:
//
//	go test ./internal/scenario -run TestScenarioLibraryGolden -update
func TestScenarioLibraryGolden(t *testing.T) {
	entries, err := scenario.LoadDir(scenariosDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		e := e
		base := strings.TrimSuffix(filepath.Base(e.Path), filepath.Ext(e.Path))
		t.Run(base, func(t *testing.T) {
			t.Parallel()
			res, err := scenario.Run(e.Scenario, quickOptions(0))
			if err != nil {
				t.Fatal(err)
			}
			if n := res.Failed(); n != 0 {
				var buf bytes.Buffer
				res.Fprint(&buf)
				t.Errorf("%d acceptance checks failed:\n%s", n, buf.String())
			}
			var buf bytes.Buffer
			res.Fprint(&buf)
			golden := filepath.Join("testdata", base+"_quick.golden")
			if *update {
				if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s (%d bytes)", golden, buf.Len())
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("read golden: %v (run with -update to create it)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("scenario report diverged from %s; first %s\n(rerun with -update if the change is intended)",
					golden, firstDiff(want, buf.Bytes()))
			}
		})
	}
}

// TestLoadDirOrderAndErrors covers the registry edge cases: stable order,
// missing directory, and empty suite.
func TestLoadDirOrderAndErrors(t *testing.T) {
	entries, err := scenario.LoadDir(scenariosDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].Path >= entries[i].Path {
			t.Fatalf("entries out of order: %s >= %s", entries[i-1].Path, entries[i].Path)
		}
	}
	if _, err := scenario.LoadDir(filepath.Join(scenariosDir, "no-such-dir")); err == nil {
		t.Fatal("want error for missing directory")
	}
	empty := t.TempDir()
	if _, err := scenario.LoadDir(empty); err == nil {
		t.Fatal("want error for empty suite")
	}
	if _, err := scenario.Load(filepath.Join(empty, "missing.yaml")); err == nil {
		t.Fatal("want error for missing file")
	}
}
