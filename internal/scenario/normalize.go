package scenario

import (
	"fmt"

	"antidope/internal/attack"
)

// Normalize returns the canonical form of a parsed scenario: the matrix
// block expands into explicit runs, every default-bearing field is filled
// with its documented default, and cross-field constraints that depend on
// those defaults are checked. Normalize never mutates its input, and it is
// idempotent — Normalize(Normalize(s)) == Normalize(s) — which, together
// with Marshal emitting exactly the parser's subset, makes
// parse -> normalize -> serialize -> parse a byte-level fixed point.
func Normalize(s *Scenario) (*Scenario, error) {
	out := *s

	// Zero marks an unset field throughout (the repo's orDefault idiom), so
	// every default here is non-zero.
	out.Sim.Slot = orDefault(out.Sim.Slot, 1)
	out.Sim.Warmup = orDefault(out.Sim.Warmup, 5)
	out.Sim.DopeEpoch = orDefault(out.Sim.DopeEpoch, 10)
	out.Sim.DopeSlowdown = orDefault(out.Sim.DopeSlowdown, 3)

	if out.Cluster.Budget == "" {
		out.Cluster.Budget = "Normal-PB"
	}

	if out.Workload.Mix == "" {
		out.Workload.Mix = "none"
	}
	if out.Workload.Mix == "none" {
		out.Workload.NormalRPS = orDefault(out.Workload.NormalRPS, 60)
	}
	if out.Workload.NormalRPS > 0 && out.Workload.NormalSources == 0 {
		out.Workload.NormalSources = 64
	}

	if out.Defense.Scheme == "" {
		out.Defense.Scheme = "none"
	}
	if out.Defense.Firewall == "" {
		out.Defense.Firewall = "off"
	}
	if out.Defense.Policy == "" {
		out.Defense.Policy = "least-loaded"
	}

	a, err := normAttack(&out.Attack, "attack")
	if err != nil {
		return nil, err
	}
	out.Attack = *a
	if out.Faults, err = normFaults(out.Faults, out.Name, "faults"); err != nil {
		return nil, err
	}

	// Matrix sugar expands into explicit runs (schemes outer, budgets
	// inner), named by the authored axis spellings; the fields themselves
	// canonicalize.
	if out.Matrix != nil {
		m := out.Matrix
		schemes, budgets := m.Schemes, m.Budgets
		if len(schemes) == 0 {
			schemes = []string{""}
		}
		if len(budgets) == 0 {
			budgets = []string{""}
		}
		seen := map[string]bool{}
		var runs []RunSpec
		for _, sc := range schemes {
			for _, b := range budgets {
				name := sc
				if name == "" {
					name = b
				} else if b != "" {
					name += "/" + b
				}
				if seen[name] {
					return nil, &Error{Path: "matrix", Msg: fmt.Sprintf("duplicate matrix cell %q", name)}
				}
				seen[name] = true
				run := RunSpec{Name: name}
				if sc != "" {
					run.Scheme, _ = canonOf(sc, schemeCanon, nil)
				}
				if b != "" {
					run.Budget, _ = canonOf(b, budgetCanon, budgetAlias)
				}
				runs = append(runs, run)
			}
		}
		out.Runs = runs
		out.Matrix = nil
	} else if len(out.Runs) > 0 {
		runs := make([]RunSpec, len(out.Runs))
		copy(runs, out.Runs)
		for i := range runs {
			path := fmt.Sprintf("runs[%d]", i)
			if runs[i].Attack != nil {
				if runs[i].Attack, err = normAttack(runs[i].Attack, path+".attack"); err != nil {
					return nil, err
				}
			}
			if runs[i].Faults, err = normFaults(runs[i].Faults, out.Name, path+".faults"); err != nil {
				return nil, err
			}
		}
		out.Runs = runs
	}

	out.Assert.SLAms = orDefault(out.Assert.SLAms, 250)
	if err := checkOrderRefs(&out); err != nil {
		return nil, err
	}
	return &out, nil
}

// orDefault substitutes d for an unset (exact-zero) field, mirroring
// core.Config's convention.
func orDefault(v, d float64) float64 {
	//lint:allow floateq -- exact zero marks an unset config field
	if v == 0 {
		return d
	}
	return v
}

func orDefaultInt(v, d int) int {
	if v == 0 {
		return d
	}
	return v
}

// normAttack canonicalizes an attack program in place-copy: flood layers
// default to application, the DOPE block fills from
// attack.DefaultDopeConfig, the switching period defaults to 120 s.
func normAttack(a *AttackSpec, path string) (*AttackSpec, error) {
	out := *a
	if len(out.Floods) > 0 {
		floods := make([]FloodSpec, len(out.Floods))
		copy(floods, out.Floods)
		for i := range floods {
			if floods[i].Layer == "" {
				floods[i].Layer = "application"
			}
		}
		out.Floods = floods
	}
	if out.Dope != nil {
		def := attack.DefaultDopeConfig()
		dp := *out.Dope
		dp.InitialRPS = orDefault(dp.InitialRPS, def.InitialRPS)
		dp.MaxRPS = orDefault(dp.MaxRPS, def.MaxRPS)
		dp.Growth = orDefault(dp.Growth, def.Growth)
		dp.Backoff = orDefault(dp.Backoff, def.Backoff)
		dp.SafetyMargin = orDefault(dp.SafetyMargin, def.SafetyMargin)
		dp.Agents = orDefaultInt(dp.Agents, def.Agents)
		dp.MaxAgents = orDefaultInt(dp.MaxAgents, def.MaxAgents)
		dp.Targets = orDefaultInt(dp.Targets, len(def.Targets))
		if dp.MaxRPS < dp.InitialRPS {
			return nil, &Error{Path: path + ".dope", Msg: fmt.Sprintf("max_rps %g below initial_rps %g", dp.MaxRPS, dp.InitialRPS)}
		}
		if dp.Backoff >= 1 {
			return nil, &Error{Path: path + ".dope.backoff", Msg: fmt.Sprintf("backoff %g must be below 1", dp.Backoff)}
		}
		if dp.MaxAgents < dp.Agents {
			return nil, &Error{Path: path + ".dope", Msg: fmt.Sprintf("max_agents %d below agents %d", dp.MaxAgents, dp.Agents)}
		}
		out.Dope = &dp
	}
	if out.Switching != nil {
		sw := *out.Switching
		sw.Period = orDefault(sw.Period, 120)
		out.Switching = &sw
	}
	return &out, nil
}

// normFaults fills the generator defaults: intensity 1, seed label
// "<scenario>/faults".
func normFaults(f *FaultsSpec, scenarioName, path string) (*FaultsSpec, error) {
	if f == nil {
		return nil, nil
	}
	out := *f
	if out.Generator != nil {
		g := *out.Generator
		g.Intensity = orDefault(g.Intensity, 1)
		if g.SeedLabel == "" {
			g.SeedLabel = scenarioName + "/faults"
		}
		out.Generator = &g
	}
	if len(out.Events) == 0 && out.Generator == nil {
		return nil, &Error{Path: path, Msg: "faults block needs events or a generator"}
	}
	return &out, nil
}

// checkOrderRefs validates that every ordering assertion names known runs.
func checkOrderRefs(s *Scenario) error {
	names := map[string]bool{}
	for _, r := range s.Runs {
		names[r.Name] = true
	}
	for i, o := range s.Assert.Orders {
		for j, rn := range o.Runs {
			if !names[rn] {
				return &Error{
					Path: fmt.Sprintf("assert.order[%d].runs[%d]", i, j),
					Msg:  fmt.Sprintf("ordering references unknown run %q", rn),
				}
			}
		}
	}
	return nil
}
