package scenario

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Load reads, parses and normalizes one scenario file (.yaml, .yml or
// .json).
func Load(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := Parse(filepath.Base(path), data)
	if err != nil {
		return nil, err
	}
	ns, err := Normalize(s)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", filepath.Base(path), err)
	}
	return ns, nil
}

// Entry is one scenario of a directory suite.
type Entry struct {
	Path     string
	Scenario *Scenario
}

// LoadDir loads every scenario document in a directory, sorted by file
// name so suites run in a stable order. Non-scenario files are ignored.
func LoadDir(dir string) ([]Entry, error) {
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(de.Name())) {
		case ".yaml", ".yml", ".json":
		default:
			continue
		}
		path := filepath.Join(dir, de.Name())
		s, err := Load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, Entry{Path: path, Scenario: s})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	if len(out) == 0 {
		return nil, fmt.Errorf("scenario: no scenario files (.yaml/.yml/.json) in %s", dir)
	}
	return out, nil
}
