package scenario_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/defense"
	"antidope/internal/experiments"
	"antidope/internal/faults"
	"antidope/internal/firewall"
	"antidope/internal/harness"
	"antidope/internal/scenario"
	"antidope/internal/workload"
)

// Twin equivalence: every checked-in scenario must produce a report
// byte-identical to jobs hand-built the way the original experiments build
// them — same seams (BaseConfig, FloodJob, EvalJob, SchemeByName), same
// labels, and therefore same per-label seeds. The twin runs at a different
// -parallel setting than the DSL run, so one comparison pins both compile
// correctness and worker-count invariance.

// twinJobs rebuilds a library scenario's job list by hand, mirroring the
// corresponding internal/experiments code path.
func twinJobs(t *testing.T, name string, o experiments.Options) []harness.Job {
	t.Helper()
	var jobs []harness.Job
	switch name {
	case "fig3":
		horizon := o.Horizon(600)
		for _, spec := range attack.Catalog() {
			spec.Duration = horizon - 5
			spec.Start = 5
			cfg := experiments.BaseConfig(o, "fig3/"+spec.Name, horizon)
			cfg.Attacks = []attack.Spec{spec}
			jobs = append(jobs, harness.Job{Label: "fig3/" + spec.Name, Config: cfg})
		}
	case "fig7":
		horizon := o.Horizon(240)
		for _, rate := range []float64{0, 100, 400, 1000} {
			label := fmt.Sprintf("fig7/%g", rate)
			jobs = append(jobs, experiments.FloodJob(o, label, workload.CollaFilt, rate,
				cluster.LowPB, experiments.SchemeByName("capping"), false, horizon))
		}
	case "fig10":
		horizon := o.Horizon(300)
		for _, class := range workload.VictimClasses() {
			for _, fwOn := range []bool{false, true} {
				label := fmt.Sprintf("fig10/%v/fw=%v", class, fwOn)
				cfg := experiments.BaseConfig(o, label, horizon)
				if fwOn {
					cfg.Firewall = firewall.DefaultConfig()
				}
				cfg.Attacks = []attack.Spec{{
					Name: label, Layer: attack.ApplicationLayer, Class: class,
					RateRPS: 1000, Agents: 4, Start: cfg.WarmupSec,
					Duration: horizon - cfg.WarmupSec,
				}}
				jobs = append(jobs, harness.Job{Label: label, Config: cfg})
			}
		}
	case "fig12":
		horizon := o.Horizon(600)
		cfg := experiments.BaseConfig(o, "fig12", horizon)
		cfg.Firewall = firewall.DefaultConfig()
		cfg.Cluster.Budget = cluster.MediumPB
		d := attack.DefaultDopeConfig()
		cfg.Dope = &d
		cfg.DopeStart = 10
		jobs = append(jobs, harness.Job{Label: "fig12", Config: cfg})
	case "eval":
		horizon := o.Horizon(300)
		for _, schemeName := range []string{"Capping", "Shaving", "Token", "Anti-DOPE"} {
			for _, budget := range cluster.AllBudgetLevels() {
				label := fmt.Sprintf("eval/%s/%s", schemeName, budget)
				jobs = append(jobs, experiments.EvalJob(o, label,
					experiments.SchemeByName(schemeName), budget,
					experiments.EvalAttackSpecs(10, horizon), horizon))
			}
		}
	case "fig18":
		horizon := o.Horizon(600)
		for _, schemeName := range []string{"Capping", "Shaving", "Token", "Anti-DOPE"} {
			scheme := experiments.SchemeByName(schemeName)
			if ad, ok := scheme.(*defense.AntiDope); ok {
				ad.SuspectPoolFrac = 0.5
			}
			label := "fig18/" + scheme.Name()
			cfg := experiments.EvalConfig(o, label, scheme, cluster.LowPB,
				experiments.SwitchingAttackSpecs(30, horizon, 120), horizon)
			cfg.ExtraSources = experiments.Fig18LegitSources()
			jobs = append(jobs, harness.Job{Label: label, Config: cfg})
		}
	case "resilience":
		horizon := o.Horizon(240)
		base := faults.GeneratorConfig{
			Horizon:         horizon,
			Servers:         cluster.DefaultConfig().Servers,
			Crashes:         2,
			TelemetryFaults: 3,
			DVFSFaults:      2,
			FirewallFlaps:   1,
			BatteryFaults:   1,
			MeanFaultSec:    15,
		}
		base.Seed = o.SeedFor("resilience/faults/1.00")
		for _, schemeName := range []string{"capping", "shaving", "token", "anti-dope"} {
			label := fmt.Sprintf("resilience/%s/x1.00", schemeName)
			job := experiments.EvalJob(o, label, experiments.SchemeByName(schemeName),
				cluster.MediumPB, experiments.EvalAttackSpecs(10, horizon), horizon)
			g := base
			job.Config.Faults = &faults.Config{Generator: &g}
			jobs = append(jobs, job)
		}
	case "resilience-net":
		horizon := o.Horizon(240)
		base := faults.GeneratorConfig{
			Horizon:      horizon,
			Servers:      cluster.DefaultConfig().Servers,
			NetFaults:    6,
			MeanFaultSec: 15,
		}
		base.Seed = o.SeedFor("resilience-net/links/1.00")
		for _, schemeName := range []string{"capping", "shaving", "token", "anti-dope"} {
			label := fmt.Sprintf("resilience-net/%s/x1.00", schemeName)
			job := experiments.EvalJob(o, label, experiments.SchemeByName(schemeName),
				cluster.MediumPB, experiments.EvalAttackSpecs(10, horizon), horizon)
			g := base
			job.Config.Faults = &faults.Config{Generator: &g}
			jobs = append(jobs, job)
		}
	default:
		t.Fatalf("no hand-written twin for scenario %q", name)
	}
	return jobs
}

func TestTwinEquivalence(t *testing.T) {
	entries, err := scenario.LoadDir(scenariosDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		e := e
		t.Run(filepath.Base(e.Path), func(t *testing.T) {
			t.Parallel()
			dslOpts := quickOptions(0)
			plan, err := scenario.Compile(e.Scenario, dslOpts)
			if err != nil {
				t.Fatal(err)
			}
			// The twin runs at a deliberately different worker count: the
			// cheap single-run scenarios sequentially, the sweeps at a fixed
			// fan-out. Identical bytes across the settings is the guarantee.
			twinOpts := quickOptions(8)
			if len(plan.Jobs) <= 4 {
				twinOpts = quickOptions(1)
			}
			twins := twinJobs(t, e.Scenario.Name, twinOpts)
			if len(twins) != len(plan.Jobs) {
				t.Fatalf("twin builds %d jobs, DSL compiled %d", len(twins), len(plan.Jobs))
			}
			for i := range twins {
				if twins[i].Label != plan.Jobs[i].Label {
					t.Fatalf("job %d label: twin %q, DSL %q", i, twins[i].Label, plan.Jobs[i].Label)
				}
			}
			dslResults, err := experiments.RunJobs(dslOpts, plan.Jobs)
			if err != nil {
				t.Fatal(err)
			}
			twinResults, err := experiments.RunJobs(twinOpts, twins)
			if err != nil {
				t.Fatal(err)
			}
			var dslOut, twinOut bytes.Buffer
			scenario.Report(plan, dslResults).Fprint(&dslOut)
			scenario.Report(plan, twinResults).Fprint(&twinOut)
			if !bytes.Equal(dslOut.Bytes(), twinOut.Bytes()) {
				t.Fatalf("DSL and hand-written twin reports differ; first %s",
					firstDiff(twinOut.Bytes(), dslOut.Bytes()))
			}
		})
	}
}
