// Package scenario is the declarative experiment layer: a YAML/JSON
// document format that composes workload mix, cluster shape, attack
// program (static floods, the adaptive DOPE attacker, the switching
// rotation), fault schedule, defense scheme and firewall/balancer policy,
// and acceptance assertions into a single scenario that compiles to
// core.Config runs on the existing harness.Pool.
//
// The pipeline is
//
//	Parse -> Normalize -> Compile -> Run
//
// with two contracts the tests and the FuzzScenario target pin:
//
//   - Canonical form. Normalize expands syntactic sugar (the matrix block
//     becomes explicit runs, enum spellings canonicalize, defaults fill
//     in) and Marshal renders the result deterministically; parse ->
//     normalize -> serialize -> parse is a fixed point, byte-identical.
//   - Twin equivalence. Compile reuses the exact seams the hand-written
//     experiments use (experiments.Options.SeedFor per label,
//     Options.Horizon for Quick-mode window shrinking, the exported job
//     builders' defaulting rules), so a checked-in scenario mirroring a
//     figure produces the same core.Config — and therefore a
//     byte-identical report — as its Go counterpart at any -parallel
//     setting. The goldens under testdata/ pin this.
//
// Every parse/validation failure is a *scenario.Error carrying the file,
// the line/column (for YAML input), and the dotted field path; malformed
// input never panics.
package scenario

// Scenario is one declarative experiment document. Enum-like fields are
// kept as canonical strings (Parse rejects unknown spellings), so a
// Scenario value is always serializable.
type Scenario struct {
	// Name prefixes every run label (and therefore every derived seed).
	Name string
	// Description is the human-readable headline printed on the report.
	Description string

	Sim      SimSpec
	Cluster  ClusterSpec
	Workload WorkloadSpec
	Defense  DefenseSpec
	// Attack is the default attack program; runs may override it wholesale.
	Attack AttackSpec
	// Faults, when present, injects the infrastructure-fault schedule.
	Faults *FaultsSpec
	// Matrix is sugar for a scheme x budget cross product of runs;
	// Normalize expands it into Runs and clears it. Mutually exclusive
	// with an explicit Runs list.
	Matrix *MatrixSpec
	// Runs are the labeled simulations. An empty list means one run whose
	// label is the scenario name itself.
	Runs []RunSpec
	// Assert holds the acceptance checks printed (and enforced) by Run.
	Assert AssertSpec
}

// SimSpec is the time base of every run in the scenario.
type SimSpec struct {
	// Horizon is the full-fidelity observation window in seconds; Quick
	// mode shrinks it through experiments.Options.Horizon exactly like the
	// hand-written figures.
	Horizon float64
	// Slot is the power-control period (default 1 s).
	Slot float64
	// Warmup excludes the initial transient from latency statistics.
	Warmup float64
	// DopeEpoch and DopeSlowdown parameterize the adaptive attacker's
	// feedback loop (defaults 10 s and 3x, the values every hand-written
	// experiment uses).
	DopeEpoch    float64
	DopeSlowdown float64
}

// ClusterSpec shapes the power domain.
type ClusterSpec struct {
	// Servers overrides the rack size; 0 keeps cluster.DefaultConfig.
	Servers int
	// Budget is the provisioning level: Normal-PB, High-PB, Medium-PB or
	// Low-PB.
	Budget string
	// BatteryAutonomySec overrides the UPS sizing; 0 keeps the default.
	BatteryAutonomySec float64
	// BatterySustainFrac, when positive, sizes the UPS sustain draw as
	// this fraction of cluster nameplate — the Section 6 gap sizing is
	// 0.2.
	BatterySustainFrac float64
}

// WorkloadSpec is the legitimate traffic.
type WorkloadSpec struct {
	// NormalRPS / NormalSources drive the single-class AliOS stream.
	NormalRPS     float64
	NormalSources int
	// Mix selects an extra-source preset: "none", "eval" (the Section 6
	// multi-endpoint legitimate mix) or "fig18" (the warm-pool mix of the
	// battery study).
	Mix string
}

// DefenseSpec selects the control plane.
type DefenseSpec struct {
	// Scheme is a defense.ByName spelling: none, capping, shaving, token,
	// anti-dope, oracle, hybrid.
	Scheme string
	// Firewall is "off", "on" (deflate ban semantics) or "limit" (classic
	// rate limiting).
	Firewall string
	// Policy is the balancer policy: "least-loaded" or "round-robin".
	Policy string
	// SuspectPoolFrac, when positive, overrides the Anti-DOPE suspect-pool
	// share of the rack (the Figure 18 deployment uses 0.5). Ignored by
	// every other scheme.
	SuspectPoolFrac float64
}

// FloodSpec is one static flood, mirroring attack.Spec.
type FloodSpec struct {
	// Name is cosmetic (labels and traces); empty defaults to the run
	// label.
	Name string
	// Layer is application, transport or network (default application).
	Layer string
	// Class is the victim endpoint, in workload.Class spelling.
	Class string
	// Rate is the aggregate request rate; a non-positive rate drops the
	// flood at compile time (the hand-written FloodJob convention).
	Rate float64
	// Agents spreads the traffic over distinct sources; 0 derives
	// max(4, rate/100) exactly like experiments.FloodJob.
	Agents int
	// Start and Duration bound the flood window; Duration 0 runs to the
	// horizon.
	Start    float64
	Duration float64
}

// DopeSpec enables the adaptive Figure 12 attacker. Zero fields fill from
// attack.DefaultDopeConfig during Normalize.
type DopeSpec struct {
	// Start delays the attacker's first request.
	Start        float64
	InitialRPS   float64
	MaxRPS       float64
	Growth       float64
	Backoff      float64
	SafetyMargin float64
	Agents       int
	MaxAgents    int
	// Targets is the size of the attacker's offline-profiled class
	// rotation (default 3).
	Targets int
}

// SwitchingSpec enables the rotating single-class flood of Figures 15/18.
type SwitchingSpec struct {
	Start float64
	// Period is the rotation interval (default 120 s).
	Period float64
}

// AttackSpec composes the attack program. All three blocks may be combined.
type AttackSpec struct {
	Floods    []FloodSpec
	Dope      *DopeSpec
	Switching *SwitchingSpec
}

// FaultEventSpec is one scripted fault, mirroring faults.Event.
type FaultEventSpec struct {
	// Kind is the kebab-case fault name (server-crash, battery-failure,
	// battery-fade, telemetry-dropout, telemetry-noise, telemetry-stale,
	// dvfs-delay, dvfs-stuck, firewall-down, net-delay, net-loss,
	// net-partition).
	Kind string
	At   float64
	// Duration is required for windowed kinds and forbidden for point
	// kinds (battery-fade).
	Duration float64
	// Server targets one server for server-scoped kinds; -1 hits all.
	Server int
	Param  float64
}

// GeneratorSpec seeds the faults.GeneratorConfig sampler. The generator's
// horizon and server count derive from the run, never from the document.
type GeneratorSpec struct {
	// SeedLabel derives the generator seed via Options.SeedFor, decoupled
	// from the run label so every run in a sweep can face the identical
	// schedule (the resilience-sweep discipline). Empty defaults to
	// "<scenario>/faults".
	SeedLabel string
	// Intensity scales every expected fault count (default 1).
	Intensity     float64
	Crashes       float64
	Telemetry     float64
	DVFS          float64
	FirewallFlaps float64
	Battery       float64
	// Net is the expected count of network-condition faults (split evenly
	// across per-link delay, loss, and partition windows).
	Net float64
	// FadeTo, when in (0,1), additionally fades the UPS capacity.
	FadeTo       float64
	MeanFaultSec float64
}

// FaultsSpec composes scripted events with a generated schedule.
type FaultsSpec struct {
	Events    []FaultEventSpec
	Generator *GeneratorSpec
}

// MatrixSpec expands into one run per (scheme, budget) pair, named
// "<scheme>/<budget>" in the authored spelling (single-axis matrices name
// runs after the one axis value). Expansion order is schemes outer,
// budgets inner — the eval-grid presentation order.
type MatrixSpec struct {
	Schemes []string
	Budgets []string
}

// RunSpec is one labeled simulation. Empty fields inherit the scenario
// defaults.
type RunSpec struct {
	Name   string
	Scheme string
	Budget string
	// Firewall overrides the defense firewall mode ("off", "on", "limit").
	Firewall string
	// Rate, when present, overrides every flood's rate (a rate sweep); a
	// zero rate removes the floods entirely.
	Rate *float64
	// Attack replaces the whole default attack program for this run.
	Attack *AttackSpec
	// Faults replaces the scenario fault block for this run.
	Faults *FaultsSpec
}

// OrderSpec asserts a metric ordering across named runs: values must be
// non-increasing along Runs when Decreasing (the default), non-decreasing
// otherwise.
type OrderSpec struct {
	// Metric is one of: availability, sla, mean-rt, p90-rt, mean-power,
	// p50-power, peak-power, over-budget, peak-over.
	Metric     string
	Runs       []string
	Decreasing bool
}

// AssertSpec is the acceptance contract the report checks.
type AssertSpec struct {
	// SLAms is the latency SLO (milliseconds) behind the "sla" metric
	// (default 250, the resilience-sweep SLO).
	SLAms float64
	// MinAvailability / MaxMeanMs / MaxPeakOverW, when present, bound
	// every run.
	MinAvailability *float64
	MaxMeanMs       *float64
	MaxPeakOverW    *float64
	Orders          []OrderSpec
}
