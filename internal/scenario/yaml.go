package scenario

// A deliberately small, dependency-free YAML-subset reader. The canonical
// serializer (canon.go) emits exactly this subset, which is what makes
// parse -> normalize -> serialize -> parse a byte-level fixed point:
//
//   - mappings:  "key: value" with two-space block indentation
//   - sequences: "- item" blocks (compact "- key: value" mappings) and the
//     inline flow forms "[]" / "[a, b, c]" for scalar lists
//   - scalars:   bare tokens or double-quoted Go strings
//   - comments:  "#" at line start or preceded by whitespace
//
// Anchors, flow mappings, multi-document streams, multiline scalars and
// tabs are not part of the subset and are rejected with a position. JSON
// documents (first byte "{") are accepted too — encoding/json is close
// enough to a YAML subset — with paths instead of line numbers in errors.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Error is the diagnostic every parse/validation failure carries: the
// file, the position (line/col, 1-based, when the input was YAML) and the
// dotted field path.
type Error struct {
	File      string
	Line, Col int
	Path      string
	Msg       string
}

func (e *Error) Error() string {
	var b strings.Builder
	if e.File != "" {
		b.WriteString(e.File)
		b.WriteString(": ")
	}
	if e.Line > 0 {
		fmt.Fprintf(&b, "line %d:%d: ", e.Line, e.Col)
	}
	if e.Path != "" {
		b.WriteString(e.Path)
		b.WriteString(": ")
	}
	b.WriteString(e.Msg)
	return b.String()
}

type pos struct{ line, col int }

type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	seqNode
)

// node is the untyped document tree the decoder walks.
type node struct {
	pos     pos
	kind    nodeKind
	val     string // scalar text (unquoted content)
	quoted  bool   // scalar came double-quoted: always a string
	entries []entry
	items   []*node
}

type entry struct {
	key  string
	kpos pos
	val  *node
}

// get returns the value of a mapping key, or nil.
func (n *node) get(key string) *node {
	for i := range n.entries {
		if n.entries[i].key == key {
			return n.entries[i].val
		}
	}
	return nil
}

// srcLine is one pre-processed input line.
type srcLine struct {
	text   string // content with indentation and comments stripped
	indent int
	line   int // 1-based source line
}

type parser struct {
	file  string
	lines []srcLine
	i     int
}

func errAt(file string, p pos, path, format string, args ...any) *Error {
	return &Error{File: file, Line: p.line, Col: p.col, Path: path, Msg: fmt.Sprintf(format, args...)}
}

// parseDoc turns a document (YAML subset or JSON) into a mapping node.
func parseDoc(file string, data []byte) (*node, error) {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return jsonToNode(file, data)
	}
	p := &parser{file: file}
	if err := p.preprocess(data); err != nil {
		return nil, err
	}
	if len(p.lines) == 0 {
		return nil, errAt(file, pos{1, 1}, "", "empty document")
	}
	if p.lines[0].indent != 0 {
		return nil, errAt(file, pos{p.lines[0].line, p.lines[0].indent + 1}, "", "top-level content must not be indented")
	}
	n, err := p.parseMapping(0, "")
	if err != nil {
		return nil, err
	}
	if p.i < len(p.lines) {
		l := p.lines[p.i]
		return nil, errAt(file, pos{l.line, l.indent + 1}, "", "unexpected de-indent to a new top-level block")
	}
	return n, nil
}

// preprocess strips comments and blank lines and records indentation.
func (p *parser) preprocess(data []byte) error {
	for lineno, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimRight(raw, " \r")
		indent := 0
		for indent < len(line) && line[indent] == ' ' {
			indent++
		}
		if indent < len(line) && line[indent] == '\t' {
			return errAt(p.file, pos{lineno + 1, indent + 1}, "", "tab indentation is not allowed")
		}
		text := stripComment(line[indent:])
		text = strings.TrimRight(text, " ")
		if text == "" {
			continue
		}
		p.lines = append(p.lines, srcLine{text: text, indent: indent, line: lineno + 1})
	}
	return nil
}

// stripComment cuts an unquoted "#" comment: at the start of the content
// or preceded by whitespace, and never inside a double-quoted string.
func stripComment(s string) string {
	inQuote := false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inQuote && c == '\\':
			i++ // skip the escaped character
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == '#' && (i == 0 || s[i-1] == ' '):
			return s[:i]
		}
	}
	return s
}

// parseMapping reads "key: value" lines at exactly the given indent.
func (p *parser) parseMapping(indent int, path string) (*node, error) {
	first := p.lines[p.i]
	out := &node{pos: pos{first.line, first.indent + 1}, kind: mapNode}
	seen := map[string]bool{}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent != indent {
			if l.indent > indent {
				return nil, errAt(p.file, pos{l.line, l.indent + 1}, path, "unexpected indentation")
			}
			break // end of this block
		}
		if strings.HasPrefix(l.text, "- ") || l.text == "-" {
			return nil, errAt(p.file, pos{l.line, l.indent + 1}, path, "sequence item where a mapping key was expected")
		}
		key, rest, ok := splitKey(l.text)
		if !ok {
			return nil, errAt(p.file, pos{l.line, l.indent + 1}, path, "expected \"key: value\"")
		}
		kpos := pos{l.line, l.indent + 1}
		if seen[key] {
			return nil, errAt(p.file, kpos, joinPath(path, key), "duplicate key")
		}
		seen[key] = true
		p.i++
		var val *node
		var err error
		if rest == "" {
			val, err = p.parseChildBlock(indent, joinPath(path, key), kpos)
		} else {
			val, err = p.parseValue(rest, pos{l.line, l.indent + len(key) + 3}, joinPath(path, key))
		}
		if err != nil {
			return nil, err
		}
		out.entries = append(out.entries, entry{key: key, kpos: kpos, val: val})
	}
	return out, nil
}

// parseChildBlock reads the indented block that serves as the value of a
// key whose line had nothing after the colon.
func (p *parser) parseChildBlock(parentIndent int, path string, kpos pos) (*node, error) {
	if p.i >= len(p.lines) || p.lines[p.i].indent <= parentIndent {
		return nil, errAt(p.file, kpos, path, "missing value (expected an indented block)")
	}
	child := p.lines[p.i]
	if strings.HasPrefix(child.text, "- ") || child.text == "-" {
		return p.parseSequence(child.indent, path)
	}
	return p.parseMapping(child.indent, path)
}

// parseSequence reads "- item" lines at exactly the given indent.
func (p *parser) parseSequence(indent int, path string) (*node, error) {
	first := p.lines[p.i]
	out := &node{pos: pos{first.line, first.indent + 1}, kind: seqNode}
	for p.i < len(p.lines) {
		l := p.lines[p.i]
		if l.indent != indent || (!strings.HasPrefix(l.text, "- ") && l.text != "-") {
			if l.indent > indent {
				return nil, errAt(p.file, pos{l.line, l.indent + 1}, path, "unexpected indentation")
			}
			break
		}
		itemPath := fmt.Sprintf("%s[%d]", path, len(out.items))
		if l.text == "-" {
			return nil, errAt(p.file, pos{l.line, l.indent + 1}, itemPath, "empty sequence item")
		}
		rest := l.text[2:]
		if _, _, isMap := splitKey(rest); isMap {
			// Compact mapping: rewrite the dash as indentation and parse a
			// mapping block at indent+2 (the canonical layout).
			p.lines[p.i] = srcLine{text: rest, indent: indent + 2, line: l.line}
			item, err := p.parseMapping(indent+2, itemPath)
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, item)
			continue
		}
		p.i++
		item, err := p.parseValue(rest, pos{l.line, l.indent + 3}, itemPath)
		if err != nil {
			return nil, err
		}
		out.items = append(out.items, item)
	}
	return out, nil
}

// parseValue reads an inline value: a scalar or a flow sequence.
func (p *parser) parseValue(text string, at pos, path string) (*node, error) {
	if strings.HasPrefix(text, "[") {
		if !strings.HasSuffix(text, "]") {
			return nil, errAt(p.file, at, path, "unterminated flow sequence")
		}
		out := &node{pos: at, kind: seqNode}
		inner := strings.TrimSpace(text[1 : len(text)-1])
		if inner == "" {
			return out, nil
		}
		for _, tok := range splitFlow(inner) {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				return nil, errAt(p.file, at, path, "empty flow-sequence element")
			}
			item, err := p.parseScalar(tok, at, fmt.Sprintf("%s[%d]", path, len(out.items)))
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, item)
		}
		return out, nil
	}
	return p.parseScalar(text, at, path)
}

// parseScalar reads one scalar token, resolving double quotes.
func (p *parser) parseScalar(text string, at pos, path string) (*node, error) {
	if strings.HasPrefix(text, "\"") {
		s, err := strconv.Unquote(text)
		if err != nil {
			return nil, errAt(p.file, at, path, "bad quoted string %s", text)
		}
		return &node{pos: at, kind: scalarNode, val: s, quoted: true}, nil
	}
	if strings.ContainsAny(text, "{}") {
		return nil, errAt(p.file, at, path, "flow mappings are not supported")
	}
	return &node{pos: at, kind: scalarNode, val: text}, nil
}

// splitKey splits "key: rest" / "key:"; ok is false when the line is not a
// mapping entry.
func splitKey(text string) (key, rest string, ok bool) {
	i := strings.IndexByte(text, ':')
	if i <= 0 {
		return "", "", false
	}
	key = text[:i]
	for j := 0; j < len(key); j++ {
		c := key[j]
		letter := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
		digit := c >= '0' && c <= '9'
		if !(letter || digit || c == '_' || c == '-') || (j == 0 && digit) {
			return "", "", false
		}
	}
	rest = text[i+1:]
	if rest != "" && !strings.HasPrefix(rest, " ") {
		return "", "", false
	}
	return key, strings.TrimSpace(rest), true
}

// splitFlow splits a flow-sequence body on commas outside quotes.
func splitFlow(s string) []string {
	var out []string
	start, inQuote := 0, false
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case inQuote && c == '\\':
			i++
		case c == '"':
			inQuote = !inQuote
		case !inQuote && c == ',':
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func joinPath(base, key string) string {
	if base == "" {
		return key
	}
	return base + "." + key
}

// jsonToNode converts a JSON document into the node tree. Mapping entries
// are sorted by key so diagnostics stay deterministic; positions are
// absent (paths carry the location instead).
func jsonToNode(file string, data []byte) (*node, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, &Error{File: file, Msg: fmt.Sprintf("invalid JSON: %v", err)}
	}
	return jsonValue(file, "", v)
}

func jsonValue(file, path string, v any) (*node, error) {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := &node{kind: mapNode}
		for _, k := range keys {
			child, err := jsonValue(file, joinPath(path, k), x[k])
			if err != nil {
				return nil, err
			}
			out.entries = append(out.entries, entry{key: k, val: child})
		}
		return out, nil
	case []any:
		out := &node{kind: seqNode}
		for i, it := range x {
			child, err := jsonValue(file, fmt.Sprintf("%s[%d]", path, i), it)
			if err != nil {
				return nil, err
			}
			out.items = append(out.items, child)
		}
		return out, nil
	case string:
		return &node{kind: scalarNode, val: x, quoted: true}, nil
	case json.Number:
		return &node{kind: scalarNode, val: x.String()}, nil
	case bool:
		return &node{kind: scalarNode, val: strconv.FormatBool(x)}, nil
	default:
		return nil, &Error{File: file, Path: path, Msg: "null values are not allowed"}
	}
}
