package scenario_test

import (
	"bytes"
	"os"
	"testing"

	"antidope/internal/scenario"
)

// roundTrip parses, normalizes, and marshals a document, failing the test
// on any error.
func roundTrip(t *testing.T, file string, data []byte) []byte {
	t.Helper()
	s, err := scenario.Parse(file, data)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ns, err := scenario.Normalize(s)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return scenario.Marshal(ns)
}

// TestRoundTripFixedPoint: parse -> normalize -> serialize -> parse is a
// fixed point. The first canonical form must re-parse to byte-identical
// canonical bytes, for every scenario in the checked-in library.
func TestRoundTripFixedPoint(t *testing.T) {
	entries, err := scenario.LoadDir(scenariosDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		e := e
		t.Run(e.Scenario.Name, func(t *testing.T) {
			raw, err := os.ReadFile(e.Path)
			if err != nil {
				t.Fatal(err)
			}
			c1 := roundTrip(t, "first", raw)
			c2 := roundTrip(t, "second", c1)
			if !bytes.Equal(c1, c2) {
				t.Fatalf("canonical form is not a fixed point; first %s", firstDiff(c1, c2))
			}
			// Normalize must also be idempotent on the already-normal value.
			ns, err := scenario.Normalize(e.Scenario)
			if err != nil {
				t.Fatal(err)
			}
			if got := scenario.Marshal(ns); !bytes.Equal(got, c1) {
				t.Fatalf("re-normalizing a normal scenario changed it; first %s", firstDiff(c1, got))
			}
		})
	}
}

// TestRoundTripJSON: a JSON document is accepted and lands on the same
// canonical YAML as its YAML spelling.
func TestRoundTripJSON(t *testing.T) {
	yamlDoc := []byte(`scenario: jdemo
sim:
  horizon: 60
attack:
  floods:
    - class: Colla-Filt
      rate: 50
assert:
  sla_ms: 100
`)
	jsonDoc := []byte(`{
  "scenario": "jdemo",
  "sim": {"horizon": 60},
  "attack": {"floods": [{"class": "Colla-Filt", "rate": 50}]},
  "assert": {"sla_ms": 100}
}`)
	fromYAML := roundTrip(t, "y.yaml", yamlDoc)
	fromJSON := roundTrip(t, "j.json", jsonDoc)
	if !bytes.Equal(fromYAML, fromJSON) {
		t.Fatalf("JSON and YAML spellings canonicalize differently; first %s",
			firstDiff(fromYAML, fromJSON))
	}
	c2 := roundTrip(t, "again", fromJSON)
	if !bytes.Equal(fromJSON, c2) {
		t.Fatalf("JSON-sourced canonical form not a fixed point; first %s", firstDiff(fromJSON, c2))
	}
}

// TestRoundTripDefaultsElided: fields explicitly set to their defaults
// canonicalize identically to leaving them out — the canonical form is a
// function of the normalized value, not the spelling.
func TestRoundTripDefaultsElided(t *testing.T) {
	terse := []byte("scenario: d\nsim:\n  horizon: 40\n")
	verbose := []byte(`scenario: d
sim:
  horizon: 40
  slot: 1
  warmup: 5
cluster:
  budget: Normal-PB
workload:
  normal_rps: 60
  normal_sources: 64
  mix: none
defense:
  scheme: none
  firewall: off
  policy: least-loaded
assert:
  sla_ms: 250
`)
	a := roundTrip(t, "terse", terse)
	b := roundTrip(t, "verbose", verbose)
	if !bytes.Equal(a, b) {
		t.Fatalf("explicit defaults changed the canonical form; first %s", firstDiff(a, b))
	}
}
