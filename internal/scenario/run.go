package scenario

import (
	"fmt"
	"io"

	"antidope/internal/core"
	"antidope/internal/experiments"
)

// Check is one evaluated acceptance assertion.
type Check struct {
	// Desc states the assertion in the report's own words.
	Desc string
	OK   bool
}

// Result is one executed scenario: the compiled plan, the per-run
// simulation results (in plan order), the rendered table and the evaluated
// acceptance checks.
type Result struct {
	Plan    *Plan
	Results []*core.Result
	Table   *experiments.Table
	Checks  []Check
}

// Run compiles the scenario and executes it on the experiments pool. A
// failed acceptance check is not an error — it is recorded in
// Result.Checks and surfaced by Failed()/Fprint; errors are reserved for
// scenarios that cannot compile or run.
func Run(s *Scenario, o experiments.Options) (*Result, error) {
	plan, err := Compile(s, o)
	if err != nil {
		return nil, err
	}
	results, err := experiments.RunJobs(o, plan.Jobs)
	if err != nil {
		return nil, err
	}
	return Report(plan, results), nil
}

// Report assembles a Result from already-executed runs (in plan order):
// the metric table and the evaluated checks. The twin-equivalence tests
// use it to render hand-built runs through the exact same printer a
// DSL-compiled scenario uses.
func Report(plan *Plan, results []*core.Result) *Result {
	out := &Result{Plan: plan, Results: results}
	out.Table = out.buildTable()
	out.Checks = out.evalChecks()
	return out
}

// Failed counts acceptance checks that did not hold.
func (r *Result) Failed() int {
	n := 0
	for _, c := range r.Checks {
		if !c.OK {
			n++
		}
	}
	return n
}

// Fprint renders the scenario report: the per-run metric table, one line
// per acceptance check, and a pass/fail footer.
func (r *Result) Fprint(w io.Writer) {
	r.Table.Fprint(w)
	for _, c := range r.Checks {
		verdict := "ok"
		if !c.OK {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "  check %s: %s\n", c.Desc, verdict)
	}
	fmt.Fprintf(w, "scenario %s: %d/%d checks ok\n",
		r.Plan.Scenario.Name, len(r.Checks)-r.Failed(), len(r.Checks))
}

// buildTable renders the fixed per-run metric grid every scenario reports.
func (r *Result) buildTable() *experiments.Table {
	s := r.Plan.Scenario
	title := "Scenario " + s.Name
	if s.Description != "" {
		title += ": " + s.Description
	}
	t := &experiments.Table{
		Title: title,
		Header: []string{"run", "scheme", "budget", "avail", "sla",
			"meanRT(ms)", "p90(ms)", "meanW", "peakW", "over(kJ)"},
	}
	slo := s.Assert.SLAms / 1e3
	for i, res := range r.Results {
		meta := r.Plan.Metas[i]
		name := meta.Name
		if name == "" {
			name = meta.Label
		}
		power := res.Power.Sample()
		t.AddRow(name, meta.Scheme, meta.Budget,
			fmt.Sprintf("%.1f%%", 100*res.Availability()),
			fmt.Sprintf("%.1f%%", 100*slaCompliance(res, slo)),
			fmt.Sprintf("%.1f", 1e3*res.MeanRT()),
			fmt.Sprintf("%.1f", 1e3*res.TailRT(90)),
			fmt.Sprintf("%.1f", power.Mean()),
			fmt.Sprintf("%.1f", res.PeakPowerW()),
			fmt.Sprintf("%.1f", res.OverBudgetJ/1e3))
	}
	return t
}

// evalChecks evaluates the assert block against the results.
func (r *Result) evalChecks() []Check {
	s := r.Plan.Scenario
	var checks []Check
	bound := func(desc string, ok bool) { checks = append(checks, Check{Desc: desc, OK: ok}) }

	runName := func(i int) string {
		if n := r.Plan.Metas[i].Name; n != "" {
			return n
		}
		return r.Plan.Metas[i].Label
	}
	for i, res := range r.Results {
		if v := s.Assert.MinAvailability; v != nil {
			bound(fmt.Sprintf("%s availability %.3f >= %g", runName(i), res.Availability(), *v),
				res.Availability() >= *v)
		}
		if v := s.Assert.MaxMeanMs; v != nil {
			bound(fmt.Sprintf("%s meanRT %.1fms <= %gms", runName(i), 1e3*res.MeanRT(), *v),
				1e3*res.MeanRT() <= *v)
		}
		if v := s.Assert.MaxPeakOverW; v != nil {
			over := peakOverW(res)
			bound(fmt.Sprintf("%s peak overshoot %.1fW <= %gW", runName(i), over, *v),
				over <= *v)
		}
	}

	byName := map[string]*core.Result{}
	for i, res := range r.Results {
		byName[runName(i)] = res
	}
	for _, o := range s.Assert.Orders {
		dir := "non-increasing"
		if !o.Decreasing {
			dir = "non-decreasing"
		}
		ok := true
		for i := 0; i+1 < len(o.Runs); i++ {
			a := metricOf(byName[o.Runs[i]], o.Metric, s.Assert.SLAms/1e3)
			b := metricOf(byName[o.Runs[i+1]], o.Metric, s.Assert.SLAms/1e3)
			if o.Decreasing && a < b || !o.Decreasing && a > b {
				ok = false
			}
		}
		bound(fmt.Sprintf("%s %s across %v", o.Metric, dir, o.Runs), ok)
	}
	return checks
}

// slaCompliance is the fraction of offered legitimate requests that
// completed within the SLO — dropped, crash-lost and still-queued requests
// all count against it (the resilience-sweep definition).
func slaCompliance(r *core.Result, sloSec float64) float64 {
	if r.OfferedLegit == 0 {
		return 1
	}
	n := 0
	for _, v := range r.LatencyLegit.Values() {
		if v <= sloSec {
			n++
		}
	}
	return float64(n) / float64(r.OfferedLegit)
}

// peakOverW is the peak draw above budget, floored at zero.
func peakOverW(r *core.Result) float64 {
	over := r.PeakPowerW() - r.BudgetW
	if over < 0 {
		over = 0
	}
	return over
}

// metricOf extracts one named assertion metric from a run result.
func metricOf(r *core.Result, metric string, sloSec float64) float64 {
	switch metric {
	case "availability":
		return r.Availability()
	case "sla":
		return slaCompliance(r, sloSec)
	case "mean-rt":
		return r.MeanRT()
	case "p90-rt":
		return r.TailRT(90)
	case "mean-power":
		return r.Power.Sample().Mean()
	case "p50-power":
		return r.Power.Sample().Percentile(50)
	case "peak-power":
		return r.PeakPowerW()
	case "over-budget":
		return r.OverBudgetJ
	case "peak-over":
		return peakOverW(r)
	}
	panic(fmt.Sprintf("scenario: unvalidated metric %q", metric))
}
