package scenario

import (
	"bytes"
	"strconv"
	"strings"
)

// Marshal renders a (normalized) scenario in canonical YAML: fixed field
// order, two-space indentation, floats in their shortest round-trip form,
// strings bare whenever the subset allows and double-quoted otherwise,
// zero-valued optional fields omitted. Marshal emits exactly the subset
// yaml.go parses, so Parse(Marshal(Normalize(s))) reproduces Normalize(s)
// and re-marshalling is byte-identical — the canonical-form fixed point the
// round-trip tests and FuzzScenario pin.
func Marshal(s *Scenario) []byte {
	e := &emitter{}
	e.field(0, "scenario", s.Name)
	if s.Description != "" {
		e.field(0, "description", s.Description)
	}

	e.key(0, "sim")
	e.num(1, "horizon", s.Sim.Horizon)
	e.num(1, "slot", s.Sim.Slot)
	e.num(1, "warmup", s.Sim.Warmup)
	e.num(1, "dope_epoch", s.Sim.DopeEpoch)
	e.num(1, "dope_slowdown", s.Sim.DopeSlowdown)

	e.key(0, "cluster")
	if s.Cluster.Servers != 0 {
		e.int(1, "servers", s.Cluster.Servers)
	}
	e.field(1, "budget", s.Cluster.Budget)
	e.numOpt(1, "battery_autonomy_sec", s.Cluster.BatteryAutonomySec)
	e.numOpt(1, "battery_sustain_frac", s.Cluster.BatterySustainFrac)

	e.key(0, "workload")
	e.numOpt(1, "normal_rps", s.Workload.NormalRPS)
	if s.Workload.NormalSources != 0 {
		e.int(1, "normal_sources", s.Workload.NormalSources)
	}
	e.field(1, "mix", s.Workload.Mix)

	e.key(0, "defense")
	e.field(1, "scheme", s.Defense.Scheme)
	e.field(1, "firewall", s.Defense.Firewall)
	e.field(1, "policy", s.Defense.Policy)
	e.numOpt(1, "suspect_pool_frac", s.Defense.SuspectPoolFrac)

	e.attack(0, &s.Attack)
	e.faults(0, s.Faults)

	if len(s.Runs) > 0 {
		e.key(0, "runs")
		for i := range s.Runs {
			e.run(1, &s.Runs[i])
		}
	}

	e.key(0, "assert")
	e.num(1, "sla_ms", s.Assert.SLAms)
	e.ptr(1, "min_availability", s.Assert.MinAvailability)
	e.ptr(1, "max_mean_ms", s.Assert.MaxMeanMs)
	e.ptr(1, "max_peak_over_w", s.Assert.MaxPeakOverW)
	if len(s.Assert.Orders) > 0 {
		e.key(1, "order")
		for _, o := range s.Assert.Orders {
			e.seqKey(2, "metric", o.Metric)
			e.list(3, "runs", o.Runs)
			if !o.Decreasing {
				e.field(3, "decreasing", "false")
			}
		}
	}
	return e.b.Bytes()
}

// emitter accumulates canonical YAML lines. Indent levels are two spaces
// each; a sequence item opens with "- " at its level and continues one
// level deeper (the exact layout parseSequence's compact-mapping rewrite
// re-reads).
type emitter struct{ b bytes.Buffer }

func (e *emitter) line(indent int, s string) {
	e.b.WriteString(strings.Repeat("  ", indent))
	e.b.WriteString(s)
	e.b.WriteByte('\n')
}

func (e *emitter) key(indent int, k string) { e.line(indent, k+":") }

func (e *emitter) field(indent int, k, v string) {
	e.line(indent, k+": "+scalarString(v))
}

func (e *emitter) num(indent int, k string, v float64) {
	e.line(indent, k+": "+formatNum(v))
}

// numOpt emits the field only when set (non-zero).
func (e *emitter) numOpt(indent int, k string, v float64) {
	//lint:allow floateq -- exact zero marks an unset config field
	if v != 0 {
		e.num(indent, k, v)
	}
}

func (e *emitter) int(indent int, k string, v int) {
	e.line(indent, k+": "+strconv.Itoa(v))
}

func (e *emitter) ptr(indent int, k string, v *float64) {
	if v != nil {
		e.num(indent, k, *v)
	}
}

// seqKey opens a sequence item with its first field: "- key: value".
func (e *emitter) seqKey(indent int, k, v string) {
	e.line(indent, "- "+k+": "+scalarString(v))
}

// list emits a flow sequence of strings.
func (e *emitter) list(indent int, k string, vs []string) {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = scalarString(v)
	}
	e.line(indent, k+": ["+strings.Join(parts, ", ")+"]")
}

func (e *emitter) attack(indent int, a *AttackSpec) {
	if len(a.Floods) == 0 && a.Dope == nil && a.Switching == nil {
		return
	}
	e.key(indent, "attack")
	if len(a.Floods) > 0 {
		e.key(indent+1, "floods")
		for i := range a.Floods {
			f := &a.Floods[i]
			first := indent + 2
			rest := indent + 3
			if f.Name != "" {
				e.seqKey(first, "name", f.Name)
				e.field(rest, "layer", f.Layer)
			} else {
				e.seqKey(first, "layer", f.Layer)
			}
			e.field(rest, "class", f.Class)
			e.numOpt(rest, "rate", f.Rate)
			if f.Agents != 0 {
				e.int(rest, "agents", f.Agents)
			}
			e.numOpt(rest, "start", f.Start)
			e.numOpt(rest, "duration", f.Duration)
		}
	}
	if a.Dope != nil {
		d := a.Dope
		e.key(indent+1, "dope")
		e.numOpt(indent+2, "start", d.Start)
		e.num(indent+2, "initial_rps", d.InitialRPS)
		e.num(indent+2, "max_rps", d.MaxRPS)
		e.num(indent+2, "growth", d.Growth)
		e.num(indent+2, "backoff", d.Backoff)
		e.numOpt(indent+2, "safety_margin", d.SafetyMargin)
		e.int(indent+2, "agents", d.Agents)
		e.int(indent+2, "max_agents", d.MaxAgents)
		e.int(indent+2, "targets", d.Targets)
	}
	if a.Switching != nil {
		e.key(indent+1, "switching")
		e.numOpt(indent+2, "start", a.Switching.Start)
		e.num(indent+2, "period", a.Switching.Period)
	}
}

func (e *emitter) faults(indent int, f *FaultsSpec) {
	if f == nil {
		return
	}
	e.key(indent, "faults")
	if len(f.Events) > 0 {
		e.key(indent+1, "events")
		for i := range f.Events {
			ev := &f.Events[i]
			e.seqKey(indent+2, "kind", ev.Kind)
			e.numOpt(indent+3, "at", ev.At)
			e.numOpt(indent+3, "duration", ev.Duration)
			if ev.Server != -1 {
				e.int(indent+3, "server", ev.Server)
			}
			e.numOpt(indent+3, "param", ev.Param)
		}
	}
	if f.Generator != nil {
		g := f.Generator
		e.key(indent+1, "generator")
		e.field(indent+2, "seed_label", g.SeedLabel)
		e.num(indent+2, "intensity", g.Intensity)
		e.numOpt(indent+2, "crashes", g.Crashes)
		e.numOpt(indent+2, "telemetry", g.Telemetry)
		e.numOpt(indent+2, "dvfs", g.DVFS)
		e.numOpt(indent+2, "firewall_flaps", g.FirewallFlaps)
		e.numOpt(indent+2, "battery", g.Battery)
		e.numOpt(indent+2, "net", g.Net)
		e.numOpt(indent+2, "fade_to", g.FadeTo)
		e.numOpt(indent+2, "mean_fault_sec", g.MeanFaultSec)
	}
}

func (e *emitter) run(indent int, r *RunSpec) {
	e.seqKey(indent, "name", r.Name)
	rest := indent + 1
	if r.Scheme != "" {
		e.field(rest, "scheme", r.Scheme)
	}
	if r.Budget != "" {
		e.field(rest, "budget", r.Budget)
	}
	if r.Firewall != "" {
		e.field(rest, "firewall", r.Firewall)
	}
	e.ptr(rest, "rate", r.Rate)
	if r.Attack != nil {
		e.attack(rest, r.Attack)
	}
	if r.Faults != nil {
		e.faults(rest, r.Faults)
	}
}

// formatNum is the canonical float spelling: the shortest representation
// that round-trips, which for whole numbers is the bare integer.
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// scalarString renders a string bare when the subset re-reads it verbatim,
// double-quoted otherwise.
func scalarString(s string) string {
	if bareSafe(s) {
		return s
	}
	return strconv.Quote(s)
}

// bareSafe reports whether the token survives a bare round trip: no
// whitespace or comment/flow/quote syntax, nothing the line scanner could
// mistake for structure.
func bareSafe(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '/' || c == '=' || c == '@' || c == '+' || c == '-':
		default:
			return false
		}
	}
	return true
}
