package scenario_test

import (
	"errors"
	"strings"
	"testing"

	"antidope/internal/scenario"
)

// minimal wraps a fragment into a parseable document with the required
// scenario/sim preamble.
func minimal(fragment string) string {
	doc := "scenario: t\nsim:\n  horizon: 60\n"
	return doc + fragment
}

// TestParseErrors: every malformed document yields a deterministic,
// position-carrying *scenario.Error — never a panic, never a bare error.
func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error text
	}{
		{"unknown top-level key", minimal("bogus: 1\n"), `unknown key "bogus"`},
		{"unknown nested key", minimal("cluster:\n  wattage: 3\n"), `cluster.wattage: unknown key`},
		{"unknown flood key", minimal("attack:\n  floods:\n    - class: Colla-Filt\n      rps: 5\n"), `floods[0].rps: unknown key`},
		{"negative rate", minimal("attack:\n  floods:\n    - class: Colla-Filt\n      rate: -3\n"), "must not be negative"},
		{"negative horizon", "scenario: t\nsim:\n  horizon: -5\n", "horizon must be positive"},
		{"nan value", minimal("workload:\n  normal_rps: NaN\n"), "non-finite"},
		{"inf value", minimal("workload:\n  normal_rps: +Inf\n"), "non-finite"},
		{"quoted number", minimal("workload:\n  normal_rps: \"60\"\n"), "expected a number"},
		{"unknown scheme", minimal("defense:\n  scheme: firewalling\n"), `unknown defense scheme "firewalling"`},
		{"unknown policy", minimal("defense:\n  policy: random\n"), `unknown balancer policy "random"`},
		{"unknown class", minimal("attack:\n  floods:\n    - class: Bitcoin\n"), `unknown request class "Bitcoin"`},
		{"unknown fault kind", minimal("faults:\n  events:\n    - kind: meteor\n      duration: 5\n"), `unknown fault kind "meteor"`},
		{"unknown metric", minimal("runs:\n  - name: a\n  - name: b\nassert:\n  order:\n    - metric: vibes\n      runs: [a, b]\n"), `unknown metric "vibes"`},
		{"overlapping fault windows", minimal(
			"faults:\n  events:\n    - kind: server-crash\n      at: 10\n      duration: 20\n    - kind: server-crash\n      at: 25\n      duration: 5\n"),
			"overlaps the window at t=10"},
		{"battery-fade with duration", minimal("faults:\n  events:\n    - kind: battery-fade\n      at: 5\n      duration: 3\n"), "takes no duration"},
		{"windowed fault without duration", minimal("faults:\n  events:\n    - kind: server-crash\n      at: 5\n"), "needs a positive duration"},
		{"missing scenario name", "sim:\n  horizon: 60\n", "scenario: missing required key"},
		{"missing sim", "scenario: t\n", "sim: missing required section"},
		{"missing horizon", "scenario: t\nsim:\n  slot: 1\n", "sim.horizon: missing required key"},
		{"missing flood class", minimal("attack:\n  floods:\n    - rate: 5\n"), "class: missing required key"},
		{"slash in scenario name", "scenario: a/b\nsim:\n  horizon: 60\n", "free of slashes"},
		{"duplicate run name", minimal("runs:\n  - name: a\n  - name: a\n"), `duplicate run name "a"`},
		{"runs and matrix together", minimal("matrix:\n  schemes: [capping]\nruns:\n  - name: a\n"), "mutually exclusive"},
		{"empty matrix", minimal("matrix: {}\n"), ""}, // flow mappings are rejected by the parser itself
		{"order with one run", minimal("runs:\n  - name: a\nassert:\n  order:\n    - metric: sla\n      runs: [a]\n"), "at least two runs"},
		{"tab indentation", "scenario: t\nsim:\n\thorizon: 60\n", "tab"},
		{"duplicate key", "scenario: t\nsim:\n  horizon: 60\n  horizon: 70\n", "duplicate key"},
		{"bad quoted string", minimal("description: \"unterminated\n"), ""},
		{"growth below one", minimal("attack:\n  dope:\n    growth: 0.5\n"), "growth must exceed 1"},
		{"backoff at one", minimal("attack:\n  dope:\n    backoff: 1\n"), "backoff 1 must be below 1"},
		{"sustain frac above one", minimal("cluster:\n  battery_sustain_frac: 1.5\n"), "fraction in [0, 1]"},
		{"suspect pool frac at one", minimal("defense:\n  suspect_pool_frac: 1\n"), "fraction below 1"},
		{"scalar where mapping expected", "scenario: t\nsim: 60\n", "expected a mapping"},
		{"mapping where list expected", minimal("attack:\n  floods:\n    inner: 1\n"), "expected a list"},
		{"non-boolean decreasing", minimal("runs:\n  - name: a\n  - name: b\nassert:\n  order:\n    - metric: sla\n      runs: [a, b]\n      decreasing: yes\n"), "expected true or false"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, err := scenario.Parse("case.yaml", []byte(tc.doc))
			if err == nil {
				// A few constraints only bind at normalize time.
				_, err = scenario.Normalize(s)
			}
			if err == nil {
				t.Fatalf("document accepted:\n%s", tc.doc)
			}
			var se *scenario.Error
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *scenario.Error: %v", err, err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err.Error(), tc.want)
			}
		})
	}
}

// TestParseErrorPositions spot-checks that diagnostics point at the
// offending line and column, not just the document.
func TestParseErrorPositions(t *testing.T) {
	doc := "scenario: t\nsim:\n  horizon: 60\ncluster:\n  wattage: 3\n"
	_, err := scenario.Parse("pos.yaml", []byte(doc))
	var se *scenario.Error
	if !errors.As(err, &se) {
		t.Fatalf("error is %T, want *scenario.Error: %v", err, err)
	}
	if se.File != "pos.yaml" || se.Line != 5 || se.Col != 3 {
		t.Fatalf("position = %s:%d:%d, want pos.yaml:5:3 (%v)", se.File, se.Line, se.Col, err)
	}
	if !strings.Contains(se.Path, "cluster.wattage") {
		t.Fatalf("path %q does not name cluster.wattage", se.Path)
	}
}

// TestNormalizeErrors covers constraints that only bind after defaults fill
// in: cross-field DOPE checks, empty faults blocks, matrix duplicates, and
// ordering assertions that reference unknown runs.
func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"order references unknown run", minimal("runs:\n  - name: a\n  - name: b\nassert:\n  order:\n    - metric: sla\n      runs: [a, ghost]\n"), `unknown run "ghost"`},
		{"empty faults block", minimal("faults: {}\n"), ""}, // rejected at parse: flow mappings are not scalars
		{"dope max below initial", minimal("attack:\n  dope:\n    initial_rps: 500\n    max_rps: 100\n"), "max_rps 100 below initial_rps 500"},
		{"dope max_agents below agents", minimal("attack:\n  dope:\n    agents: 64\n    max_agents: 8\n"), "max_agents 8 below agents 64"},
		{"duplicate matrix cell", minimal("matrix:\n  schemes: [capping, capping]\n"), "duplicate matrix cell"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			s, err := scenario.Parse("case.yaml", []byte(tc.doc))
			if err == nil {
				_, err = scenario.Normalize(s)
			}
			if err == nil {
				t.Fatalf("document accepted:\n%s", tc.doc)
			}
			var se *scenario.Error
			if !errors.As(err, &se) {
				t.Fatalf("error is %T, want *scenario.Error: %v", err, err)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err.Error(), tc.want)
			}
		})
	}
}
