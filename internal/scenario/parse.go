package scenario

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Parse decodes one scenario document (YAML subset or JSON). Every
// diagnostic is a *Error carrying the file, the position and the dotted
// field path; unknown keys, malformed values, non-finite numbers, unknown
// enum spellings and overlapping fault windows are all rejected here, so
// a parsed Scenario is always semantically sound. Parse never panics,
// whatever the input bytes contain.
func Parse(file string, data []byte) (*Scenario, error) {
	root, err := parseDoc(file, data)
	if err != nil {
		return nil, err
	}
	d := &dec{file: file}
	return d.scenario(root)
}

// dec is the document decoder; it carries the file name for diagnostics.
type dec struct{ file string }

func (d *dec) errAt(p pos, path, format string, args ...any) *Error {
	return errAt(d.file, p, path, fmt.Sprintf(format, args...))
}

// mapReader consumes the entries of a mapping node and reports the first
// unconsumed key as unknown.
type mapReader struct {
	d    *dec
	n    *node
	path string
	used map[string]bool
}

func (d *dec) mapping(n *node, path string) (*mapReader, error) {
	if n.kind != mapNode {
		return nil, d.errAt(n.pos, path, "expected a mapping")
	}
	return &mapReader{d: d, n: n, path: path, used: map[string]bool{}}, nil
}

// get marks a key consumed and returns its value node (nil if absent).
func (m *mapReader) get(key string) *node {
	m.used[key] = true
	return m.n.get(key)
}

// finish rejects the first key the decoder never asked for.
func (m *mapReader) finish() error {
	for _, e := range m.n.entries {
		if !m.used[e.key] {
			return m.d.errAt(e.kpos, joinPath(m.path, e.key), "unknown key %q", e.key)
		}
	}
	return nil
}

func (m *mapReader) child(key string) string { return joinPath(m.path, key) }

// --- typed scalar readers -------------------------------------------------

func (d *dec) str(n *node, path string) (string, error) {
	if n.kind != scalarNode {
		return "", d.errAt(n.pos, path, "expected a string")
	}
	return n.val, nil
}

func (d *dec) f64(n *node, path string) (float64, error) {
	if n.kind != scalarNode || n.quoted {
		return 0, d.errAt(n.pos, path, "expected a number")
	}
	v, err := strconv.ParseFloat(n.val, 64)
	if err != nil {
		return 0, d.errAt(n.pos, path, "invalid number %q", n.val)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, d.errAt(n.pos, path, "non-finite value %q", n.val)
	}
	return v, nil
}

func (d *dec) nonNeg(n *node, path string) (float64, error) {
	v, err := d.f64(n, path)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, d.errAt(n.pos, path, "must not be negative (got %s)", n.val)
	}
	return v, nil
}

func (d *dec) int(n *node, path string) (int, error) {
	if n.kind != scalarNode || n.quoted {
		return 0, d.errAt(n.pos, path, "expected an integer")
	}
	v, err := strconv.Atoi(n.val)
	if err != nil {
		return 0, d.errAt(n.pos, path, "invalid integer %q", n.val)
	}
	return v, nil
}

func (d *dec) boolean(n *node, path string) (bool, error) {
	if n.kind != scalarNode || n.quoted {
		return false, d.errAt(n.pos, path, "expected true or false")
	}
	switch n.val {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, d.errAt(n.pos, path, "expected true or false, got %q", n.val)
}

// strings reads a sequence of scalar strings.
func (d *dec) strings(n *node, path string) ([]string, error) {
	if n.kind != seqNode {
		return nil, d.errAt(n.pos, path, "expected a list")
	}
	out := make([]string, 0, len(n.items))
	for i, it := range n.items {
		s, err := d.str(it, fmt.Sprintf("%s[%d]", path, i))
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// --- enum canonicalization ------------------------------------------------

// squash lower-cases a spelling and removes separators, so "Anti-DOPE",
// "anti_dope" and "antidope" all land on the same key.
func squash(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case '-', '_', ' ':
			return -1
		}
		return r
	}, strings.ToLower(s))
}

// canonOf resolves a spelling against a canonical-name list.
func canonOf(s string, canon []string, alias map[string]string) (string, bool) {
	key := squash(s)
	for _, c := range canon {
		if squash(c) == key {
			return c, true
		}
	}
	if alias != nil {
		if c, ok := alias[key]; ok {
			return c, true
		}
	}
	return "", false
}

// enum resolves a spelling against a canonical-name list.
func (d *dec) enum(n *node, path, what string, canon []string, alias map[string]string) (string, error) {
	s, err := d.str(n, path)
	if err != nil {
		return "", err
	}
	if c, ok := canonOf(s, canon, alias); ok {
		return c, nil
	}
	return "", d.errAt(n.pos, path, "unknown %s %q (want %s)", what, s, strings.Join(canon, ", "))
}

var (
	schemeCanon   = []string{"none", "capping", "shaving", "token", "anti-dope", "oracle", "hybrid"}
	budgetCanon   = []string{"Normal-PB", "High-PB", "Medium-PB", "Low-PB"}
	budgetAlias   = map[string]string{"normal": "Normal-PB", "high": "High-PB", "medium": "Medium-PB", "low": "Low-PB"}
	classCanon    = []string{"Colla-Filt", "K-means", "Word-Count", "Text-Cont", "AliOS", "Volume-Flood", "Slow-Drip"}
	classAlias    = map[string]string{"alinormal": "AliOS"}
	layerCanon    = []string{"application", "transport", "network"}
	firewallCanon = []string{"off", "on", "limit"}
	policyCanon   = []string{"least-loaded", "round-robin"}
	mixCanon      = []string{"none", "eval", "fig18"}
	kindCanon     = []string{"server-crash", "battery-failure", "battery-fade",
		"telemetry-dropout", "telemetry-noise", "telemetry-stale",
		"dvfs-delay", "dvfs-stuck", "firewall-down",
		"net-delay", "net-loss", "net-partition"}
	metricCanon = []string{"availability", "sla", "mean-rt", "p90-rt",
		"mean-power", "p50-power", "peak-power", "over-budget", "peak-over"}
)

// --- section decoders -----------------------------------------------------

func (d *dec) scenario(root *node) (*Scenario, error) {
	m, err := d.mapping(root, "")
	if err != nil {
		return nil, err
	}
	s := &Scenario{}

	nameNode := m.get("scenario")
	if nameNode == nil {
		return nil, d.errAt(root.pos, "scenario", "missing required key")
	}
	if s.Name, err = d.str(nameNode, "scenario"); err != nil {
		return nil, err
	}
	if s.Name == "" || strings.ContainsAny(s.Name, "/ \t") {
		return nil, d.errAt(nameNode.pos, "scenario", "scenario name %q must be non-empty and free of slashes and spaces", s.Name)
	}
	if n := m.get("description"); n != nil {
		if s.Description, err = d.str(n, "description"); err != nil {
			return nil, err
		}
	}

	simNode := m.get("sim")
	if simNode == nil {
		return nil, d.errAt(root.pos, "sim", "missing required section")
	}
	if s.Sim, err = d.sim(simNode, "sim"); err != nil {
		return nil, err
	}
	if n := m.get("cluster"); n != nil {
		if s.Cluster, err = d.cluster(n, "cluster"); err != nil {
			return nil, err
		}
	}
	if n := m.get("workload"); n != nil {
		if s.Workload, err = d.workload(n, "workload"); err != nil {
			return nil, err
		}
	}
	if n := m.get("defense"); n != nil {
		if s.Defense, err = d.defense(n, "defense"); err != nil {
			return nil, err
		}
	}
	if n := m.get("attack"); n != nil {
		a, err := d.attack(n, "attack")
		if err != nil {
			return nil, err
		}
		s.Attack = *a
	}
	if n := m.get("faults"); n != nil {
		if s.Faults, err = d.faults(n, "faults"); err != nil {
			return nil, err
		}
	}
	if n := m.get("matrix"); n != nil {
		if s.Matrix, err = d.matrix(n, "matrix"); err != nil {
			return nil, err
		}
	}
	if n := m.get("runs"); n != nil {
		if s.Runs, err = d.runs(n, "runs"); err != nil {
			return nil, err
		}
		if s.Matrix != nil {
			return nil, d.errAt(n.pos, "runs", "runs and matrix are mutually exclusive")
		}
	}
	if n := m.get("assert"); n != nil {
		if s.Assert, err = d.assert(n, "assert"); err != nil {
			return nil, err
		}
	}
	return s, m.finish()
}

func (d *dec) sim(n *node, path string) (SimSpec, error) {
	var out SimSpec
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	hn := m.get("horizon")
	if hn == nil {
		return out, d.errAt(n.pos, m.child("horizon"), "missing required key")
	}
	if out.Horizon, err = d.f64(hn, m.child("horizon")); err != nil {
		return out, err
	}
	if out.Horizon <= 0 {
		return out, d.errAt(hn.pos, m.child("horizon"), "horizon must be positive (got %s)", hn.val)
	}
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"slot", &out.Slot}, {"warmup", &out.Warmup},
		{"dope_epoch", &out.DopeEpoch}, {"dope_slowdown", &out.DopeSlowdown},
	} {
		if vn := m.get(f.key); vn != nil {
			if *f.dst, err = d.nonNeg(vn, m.child(f.key)); err != nil {
				return out, err
			}
		}
	}
	return out, m.finish()
}

func (d *dec) cluster(n *node, path string) (ClusterSpec, error) {
	var out ClusterSpec
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	if vn := m.get("servers"); vn != nil {
		if out.Servers, err = d.int(vn, m.child("servers")); err != nil {
			return out, err
		}
		if out.Servers < 0 {
			return out, d.errAt(vn.pos, m.child("servers"), "must not be negative")
		}
	}
	if vn := m.get("budget"); vn != nil {
		if out.Budget, err = d.enum(vn, m.child("budget"), "budget level", budgetCanon, budgetAlias); err != nil {
			return out, err
		}
	}
	if vn := m.get("battery_autonomy_sec"); vn != nil {
		if out.BatteryAutonomySec, err = d.nonNeg(vn, m.child("battery_autonomy_sec")); err != nil {
			return out, err
		}
	}
	if vn := m.get("battery_sustain_frac"); vn != nil {
		if out.BatterySustainFrac, err = d.nonNeg(vn, m.child("battery_sustain_frac")); err != nil {
			return out, err
		}
		if out.BatterySustainFrac > 1 {
			return out, d.errAt(vn.pos, m.child("battery_sustain_frac"), "must be a fraction in [0, 1]")
		}
	}
	return out, m.finish()
}

func (d *dec) workload(n *node, path string) (WorkloadSpec, error) {
	var out WorkloadSpec
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	if vn := m.get("normal_rps"); vn != nil {
		if out.NormalRPS, err = d.nonNeg(vn, m.child("normal_rps")); err != nil {
			return out, err
		}
	}
	if vn := m.get("normal_sources"); vn != nil {
		if out.NormalSources, err = d.int(vn, m.child("normal_sources")); err != nil {
			return out, err
		}
		if out.NormalSources < 0 {
			return out, d.errAt(vn.pos, m.child("normal_sources"), "must not be negative")
		}
	}
	if vn := m.get("mix"); vn != nil {
		if out.Mix, err = d.enum(vn, m.child("mix"), "workload mix", mixCanon, nil); err != nil {
			return out, err
		}
	}
	return out, m.finish()
}

func (d *dec) defense(n *node, path string) (DefenseSpec, error) {
	var out DefenseSpec
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	if vn := m.get("scheme"); vn != nil {
		if out.Scheme, err = d.enum(vn, m.child("scheme"), "defense scheme", schemeCanon, nil); err != nil {
			return out, err
		}
	}
	if vn := m.get("firewall"); vn != nil {
		if out.Firewall, err = d.enum(vn, m.child("firewall"), "firewall mode", firewallCanon, nil); err != nil {
			return out, err
		}
	}
	if vn := m.get("policy"); vn != nil {
		if out.Policy, err = d.enum(vn, m.child("policy"), "balancer policy", policyCanon, nil); err != nil {
			return out, err
		}
	}
	if vn := m.get("suspect_pool_frac"); vn != nil {
		if out.SuspectPoolFrac, err = d.nonNeg(vn, m.child("suspect_pool_frac")); err != nil {
			return out, err
		}
		if out.SuspectPoolFrac >= 1 {
			return out, d.errAt(vn.pos, m.child("suspect_pool_frac"), "must be a fraction below 1")
		}
	}
	return out, m.finish()
}

func (d *dec) attack(n *node, path string) (*AttackSpec, error) {
	out := &AttackSpec{}
	m, err := d.mapping(n, path)
	if err != nil {
		return nil, err
	}
	if fn := m.get("floods"); fn != nil {
		if fn.kind != seqNode {
			return nil, d.errAt(fn.pos, m.child("floods"), "expected a list")
		}
		out.Floods = make([]FloodSpec, 0, len(fn.items))
		for i, it := range fn.items {
			f, err := d.flood(it, fmt.Sprintf("%s[%d]", m.child("floods"), i))
			if err != nil {
				return nil, err
			}
			out.Floods = append(out.Floods, f)
		}
	}
	if dn := m.get("dope"); dn != nil {
		if out.Dope, err = d.dope(dn, m.child("dope")); err != nil {
			return nil, err
		}
	}
	if sn := m.get("switching"); sn != nil {
		if out.Switching, err = d.switching(sn, m.child("switching")); err != nil {
			return nil, err
		}
	}
	return out, m.finish()
}

func (d *dec) flood(n *node, path string) (FloodSpec, error) {
	var out FloodSpec
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	if vn := m.get("name"); vn != nil {
		if out.Name, err = d.str(vn, m.child("name")); err != nil {
			return out, err
		}
	}
	if vn := m.get("layer"); vn != nil {
		if out.Layer, err = d.enum(vn, m.child("layer"), "attack layer", layerCanon, nil); err != nil {
			return out, err
		}
	}
	cn := m.get("class")
	if cn == nil {
		return out, d.errAt(n.pos, m.child("class"), "missing required key")
	}
	if out.Class, err = d.enum(cn, m.child("class"), "request class", classCanon, classAlias); err != nil {
		return out, err
	}
	if vn := m.get("rate"); vn != nil {
		if out.Rate, err = d.nonNeg(vn, m.child("rate")); err != nil {
			return out, err
		}
	}
	if vn := m.get("agents"); vn != nil {
		if out.Agents, err = d.int(vn, m.child("agents")); err != nil {
			return out, err
		}
		if out.Agents < 0 {
			return out, d.errAt(vn.pos, m.child("agents"), "must not be negative")
		}
	}
	if vn := m.get("start"); vn != nil {
		if out.Start, err = d.nonNeg(vn, m.child("start")); err != nil {
			return out, err
		}
	}
	if vn := m.get("duration"); vn != nil {
		if out.Duration, err = d.nonNeg(vn, m.child("duration")); err != nil {
			return out, err
		}
	}
	return out, m.finish()
}

func (d *dec) dope(n *node, path string) (*DopeSpec, error) {
	out := &DopeSpec{}
	m, err := d.mapping(n, path)
	if err != nil {
		return nil, err
	}
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"start", &out.Start}, {"initial_rps", &out.InitialRPS}, {"max_rps", &out.MaxRPS},
		{"growth", &out.Growth}, {"backoff", &out.Backoff}, {"safety_margin", &out.SafetyMargin},
	} {
		if vn := m.get(f.key); vn != nil {
			if *f.dst, err = d.nonNeg(vn, m.child(f.key)); err != nil {
				return nil, err
			}
		}
	}
	for _, f := range []struct {
		key string
		dst *int
	}{
		{"agents", &out.Agents}, {"max_agents", &out.MaxAgents}, {"targets", &out.Targets},
	} {
		if vn := m.get(f.key); vn != nil {
			if *f.dst, err = d.int(vn, m.child(f.key)); err != nil {
				return nil, err
			}
			if *f.dst < 0 {
				return nil, d.errAt(vn.pos, m.child(f.key), "must not be negative")
			}
		}
	}
	//lint:allow floateq -- exact zero marks an unset config field
	if vn := m.n.get("growth"); vn != nil && out.Growth != 0 && out.Growth <= 1 {
		return nil, d.errAt(vn.pos, m.child("growth"), "growth must exceed 1")
	}
	if vn := m.n.get("safety_margin"); vn != nil && out.SafetyMargin >= 1 {
		return nil, d.errAt(vn.pos, m.child("safety_margin"), "safety margin must be below 1")
	}
	return out, m.finish()
}

func (d *dec) switching(n *node, path string) (*SwitchingSpec, error) {
	out := &SwitchingSpec{}
	m, err := d.mapping(n, path)
	if err != nil {
		return nil, err
	}
	if vn := m.get("start"); vn != nil {
		if out.Start, err = d.nonNeg(vn, m.child("start")); err != nil {
			return nil, err
		}
	}
	if vn := m.get("period"); vn != nil {
		if out.Period, err = d.nonNeg(vn, m.child("period")); err != nil {
			return nil, err
		}
		//lint:allow floateq -- rejecting the exact literal 0
		if out.Period == 0 {
			return nil, d.errAt(vn.pos, m.child("period"), "period must be positive")
		}
	}
	return out, m.finish()
}

func (d *dec) faults(n *node, path string) (*FaultsSpec, error) {
	out := &FaultsSpec{}
	m, err := d.mapping(n, path)
	if err != nil {
		return nil, err
	}
	var positions []pos
	if en := m.get("events"); en != nil {
		if en.kind != seqNode {
			return nil, d.errAt(en.pos, m.child("events"), "expected a list")
		}
		for i, it := range en.items {
			ev, err := d.faultEvent(it, fmt.Sprintf("%s[%d]", m.child("events"), i))
			if err != nil {
				return nil, err
			}
			out.Events = append(out.Events, ev)
			positions = append(positions, it.pos)
		}
		if err := d.checkOverlaps(out.Events, positions, m.child("events")); err != nil {
			return nil, err
		}
	}
	if gn := m.get("generator"); gn != nil {
		if out.Generator, err = d.generator(gn, m.child("generator")); err != nil {
			return nil, err
		}
	}
	return out, m.finish()
}

func (d *dec) faultEvent(n *node, path string) (FaultEventSpec, error) {
	out := FaultEventSpec{Server: -1}
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	kn := m.get("kind")
	if kn == nil {
		return out, d.errAt(n.pos, m.child("kind"), "missing required key")
	}
	if out.Kind, err = d.enum(kn, m.child("kind"), "fault kind", kindCanon, nil); err != nil {
		return out, err
	}
	if vn := m.get("at"); vn != nil {
		if out.At, err = d.nonNeg(vn, m.child("at")); err != nil {
			return out, err
		}
	}
	dn := m.get("duration")
	if dn != nil {
		if out.Duration, err = d.nonNeg(dn, m.child("duration")); err != nil {
			return out, err
		}
	}
	windowed := out.Kind != "battery-fade"
	if windowed && out.Duration <= 0 {
		return out, d.errAt(n.pos, m.child("duration"), "%s needs a positive duration", out.Kind)
	}
	if !windowed && dn != nil {
		return out, d.errAt(dn.pos, m.child("duration"), "battery-fade is instantaneous and takes no duration")
	}
	if vn := m.get("server"); vn != nil {
		if out.Server, err = d.int(vn, m.child("server")); err != nil {
			return out, err
		}
		if out.Server < -1 {
			return out, d.errAt(vn.pos, m.child("server"), "server must be -1 (all) or a server index")
		}
	}
	if vn := m.get("param"); vn != nil {
		if out.Param, err = d.nonNeg(vn, m.child("param")); err != nil {
			return out, err
		}
		if out.Kind == "battery-fade" && out.Param > 1 {
			return out, d.errAt(vn.pos, m.child("param"), "battery-fade param is a capacity fraction in [0, 1]")
		}
		if out.Kind == "net-loss" && out.Param > 1 {
			return out, d.errAt(vn.pos, m.child("param"), "net-loss param is a drop probability in [0, 1]")
		}
	}
	return out, m.finish()
}

// checkOverlaps rejects overlapping windows of the same kind and target.
// The hand-written faults.Schedule silently merges such windows; the DSL
// holds authors to a stricter contract so a typo'd schedule cannot quietly
// mean something else.
func (d *dec) checkOverlaps(events []FaultEventSpec, positions []pos, path string) error {
	type idx struct {
		i  int
		ev FaultEventSpec
	}
	groups := map[string][]idx{}
	for i, ev := range events {
		if ev.Kind == "battery-fade" {
			continue
		}
		key := fmt.Sprintf("%s/%d", ev.Kind, ev.Server)
		groups[key] = append(groups[key], idx{i, ev})
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := groups[k]
		sort.SliceStable(g, func(a, b int) bool {
			if g[a].ev.At != g[b].ev.At { //lint:allow floateq -- sort key comparison, ties fall through
				return g[a].ev.At < g[b].ev.At
			}
			return g[a].i < g[b].i
		})
		for j := 1; j < len(g); j++ {
			prev, cur := g[j-1], g[j]
			if cur.ev.At < prev.ev.At+prev.ev.Duration {
				return d.errAt(positions[cur.i], fmt.Sprintf("%s[%d]", path, cur.i),
					"%s window at t=%g overlaps the window at t=%g (events[%d])",
					cur.ev.Kind, cur.ev.At, prev.ev.At, prev.i)
			}
		}
	}
	return nil
}

func (d *dec) generator(n *node, path string) (*GeneratorSpec, error) {
	out := &GeneratorSpec{}
	m, err := d.mapping(n, path)
	if err != nil {
		return nil, err
	}
	if vn := m.get("seed_label"); vn != nil {
		if out.SeedLabel, err = d.str(vn, m.child("seed_label")); err != nil {
			return nil, err
		}
	}
	for _, f := range []struct {
		key string
		dst *float64
	}{
		{"intensity", &out.Intensity}, {"crashes", &out.Crashes},
		{"telemetry", &out.Telemetry}, {"dvfs", &out.DVFS},
		{"firewall_flaps", &out.FirewallFlaps}, {"battery", &out.Battery},
		{"net", &out.Net},
		{"fade_to", &out.FadeTo}, {"mean_fault_sec", &out.MeanFaultSec},
	} {
		if vn := m.get(f.key); vn != nil {
			if *f.dst, err = d.nonNeg(vn, m.child(f.key)); err != nil {
				return nil, err
			}
		}
	}
	if vn := m.n.get("fade_to"); vn != nil && out.FadeTo >= 1 {
		return nil, d.errAt(vn.pos, m.child("fade_to"), "fade_to must be a fraction below 1")
	}
	return out, m.finish()
}

func (d *dec) matrix(n *node, path string) (*MatrixSpec, error) {
	out := &MatrixSpec{}
	m, err := d.mapping(n, path)
	if err != nil {
		return nil, err
	}
	if vn := m.get("schemes"); vn != nil {
		raw, err := d.strings(vn, m.child("schemes"))
		if err != nil {
			return nil, err
		}
		for i, s := range raw {
			if _, err := d.enum(vn.items[i], fmt.Sprintf("%s[%d]", m.child("schemes"), i),
				"defense scheme", schemeCanon, nil); err != nil {
				return nil, err
			}
			out.Schemes = append(out.Schemes, s)
		}
	}
	if vn := m.get("budgets"); vn != nil {
		raw, err := d.strings(vn, m.child("budgets"))
		if err != nil {
			return nil, err
		}
		for i, s := range raw {
			if _, err := d.enum(vn.items[i], fmt.Sprintf("%s[%d]", m.child("budgets"), i),
				"budget level", budgetCanon, budgetAlias); err != nil {
				return nil, err
			}
			out.Budgets = append(out.Budgets, s)
		}
	}
	if len(out.Schemes) == 0 && len(out.Budgets) == 0 {
		return nil, d.errAt(n.pos, path, "matrix needs at least one axis (schemes, budgets)")
	}
	return out, m.finish()
}

func (d *dec) runs(n *node, path string) ([]RunSpec, error) {
	if n.kind != seqNode {
		return nil, d.errAt(n.pos, path, "expected a list")
	}
	out := make([]RunSpec, 0, len(n.items))
	seen := map[string]int{}
	for i, it := range n.items {
		rpath := fmt.Sprintf("%s[%d]", path, i)
		r, err := d.run(it, rpath)
		if err != nil {
			return nil, err
		}
		if prev, dup := seen[r.Name]; dup {
			return nil, d.errAt(it.pos, rpath, "duplicate run name %q (first at runs[%d])", r.Name, prev)
		}
		seen[r.Name] = i
		out = append(out, r)
	}
	return out, nil
}

func (d *dec) run(n *node, path string) (RunSpec, error) {
	var out RunSpec
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	nn := m.get("name")
	if nn == nil {
		return out, d.errAt(n.pos, m.child("name"), "missing required key")
	}
	if out.Name, err = d.str(nn, m.child("name")); err != nil {
		return out, err
	}
	if out.Name == "" || strings.ContainsAny(out.Name, " \t") {
		return out, d.errAt(nn.pos, m.child("name"), "run name must be non-empty and free of spaces")
	}
	if vn := m.get("scheme"); vn != nil {
		if out.Scheme, err = d.enum(vn, m.child("scheme"), "defense scheme", schemeCanon, nil); err != nil {
			return out, err
		}
	}
	if vn := m.get("budget"); vn != nil {
		if out.Budget, err = d.enum(vn, m.child("budget"), "budget level", budgetCanon, budgetAlias); err != nil {
			return out, err
		}
	}
	if vn := m.get("firewall"); vn != nil {
		if out.Firewall, err = d.enum(vn, m.child("firewall"), "firewall mode", firewallCanon, nil); err != nil {
			return out, err
		}
	}
	if vn := m.get("rate"); vn != nil {
		v, err := d.nonNeg(vn, m.child("rate"))
		if err != nil {
			return out, err
		}
		out.Rate = &v
	}
	if vn := m.get("attack"); vn != nil {
		if out.Attack, err = d.attack(vn, m.child("attack")); err != nil {
			return out, err
		}
	}
	if vn := m.get("faults"); vn != nil {
		if out.Faults, err = d.faults(vn, m.child("faults")); err != nil {
			return out, err
		}
	}
	return out, m.finish()
}

func (d *dec) assert(n *node, path string) (AssertSpec, error) {
	var out AssertSpec
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	if vn := m.get("sla_ms"); vn != nil {
		if out.SLAms, err = d.nonNeg(vn, m.child("sla_ms")); err != nil {
			return out, err
		}
		//lint:allow floateq -- rejecting the exact literal 0
		if out.SLAms == 0 {
			return out, d.errAt(vn.pos, m.child("sla_ms"), "sla_ms must be positive")
		}
	}
	for _, f := range []struct {
		key string
		dst **float64
	}{
		{"min_availability", &out.MinAvailability},
		{"max_mean_ms", &out.MaxMeanMs},
		{"max_peak_over_w", &out.MaxPeakOverW},
	} {
		if vn := m.get(f.key); vn != nil {
			v, err := d.nonNeg(vn, m.child(f.key))
			if err != nil {
				return out, err
			}
			*f.dst = &v
		}
	}
	if on := m.get("order"); on != nil {
		if on.kind != seqNode {
			return out, d.errAt(on.pos, m.child("order"), "expected a list")
		}
		for i, it := range on.items {
			o, err := d.order(it, fmt.Sprintf("%s[%d]", m.child("order"), i))
			if err != nil {
				return out, err
			}
			out.Orders = append(out.Orders, o)
		}
	}
	return out, m.finish()
}

func (d *dec) order(n *node, path string) (OrderSpec, error) {
	out := OrderSpec{Decreasing: true}
	m, err := d.mapping(n, path)
	if err != nil {
		return out, err
	}
	mn := m.get("metric")
	if mn == nil {
		return out, d.errAt(n.pos, m.child("metric"), "missing required key")
	}
	if out.Metric, err = d.enum(mn, m.child("metric"), "metric", metricCanon, nil); err != nil {
		return out, err
	}
	rn := m.get("runs")
	if rn == nil {
		return out, d.errAt(n.pos, m.child("runs"), "missing required key")
	}
	if out.Runs, err = d.strings(rn, m.child("runs")); err != nil {
		return out, err
	}
	if len(out.Runs) < 2 {
		return out, d.errAt(rn.pos, m.child("runs"), "an ordering needs at least two runs")
	}
	if vn := m.get("decreasing"); vn != nil {
		if out.Decreasing, err = d.boolean(vn, m.child("decreasing")); err != nil {
			return out, err
		}
	}
	return out, m.finish()
}
