package scenario

import (
	"fmt"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/experiments"
	"antidope/internal/faults"
	"antidope/internal/firewall"
	"antidope/internal/harness"
	"antidope/internal/netlb"
	"antidope/internal/workload"
)

// RunMeta is the resolved identity of one compiled run, for reporting.
type RunMeta struct {
	// Name is the run's name within the scenario ("" for the implicit
	// single run); Label is the full harness label (scenario name, plus
	// "/<name>" when a name exists) every per-run seed derives from.
	Name, Label string
	// Scheme and Budget are the effective canonical spellings after run
	// overrides.
	Scheme, Budget string
}

// Plan is a compiled scenario: one harness job per run, ready for
// experiments.RunJobs.
type Plan struct {
	// Scenario is the normalized document the jobs were compiled from.
	Scenario *Scenario
	Jobs     []harness.Job
	Metas    []RunMeta
	// Horizon is the effective observation window after Quick-mode
	// shrinking.
	Horizon float64
}

// Compile normalizes the scenario and lowers every run to a core.Config,
// reusing the exact experiments seams the hand-written figures use —
// Options.SeedFor on the run label, Options.Horizon for Quick-mode window
// shrinking, and the FloodJob defaulting rules (agent derivation, zero-rate
// drop, run-to-horizon windows) — so a scenario mirroring a figure yields
// byte-identical reports to its Go twin at any -parallel setting.
func Compile(s *Scenario, o experiments.Options) (*Plan, error) {
	ns, err := Normalize(s)
	if err != nil {
		return nil, err
	}
	horizon := o.Horizon(ns.Sim.Horizon)
	plan := &Plan{Scenario: ns, Horizon: horizon}
	runs := ns.Runs
	if len(runs) == 0 {
		runs = []RunSpec{{}}
	}
	for i := range runs {
		run := &runs[i]
		label := ns.Name
		if run.Name != "" {
			label += "/" + run.Name
		}
		cfg, meta, err := compileRun(ns, run, o, label, horizon)
		if err != nil {
			return nil, err
		}
		plan.Jobs = append(plan.Jobs, harness.Job{Label: label, Config: cfg})
		plan.Metas = append(plan.Metas, meta)
	}
	return plan, nil
}

var budgetLevels = map[string]cluster.BudgetLevel{
	"Normal-PB": cluster.NormalPB,
	"High-PB":   cluster.HighPB,
	"Medium-PB": cluster.MediumPB,
	"Low-PB":    cluster.LowPB,
}

var classValues = map[string]workload.Class{
	"Colla-Filt":   workload.CollaFilt,
	"K-means":      workload.KMeans,
	"Word-Count":   workload.WordCount,
	"Text-Cont":    workload.TextCont,
	"AliOS":        workload.AliNormal,
	"Volume-Flood": workload.VolumeFlood,
	"Slow-Drip":    workload.SlowDrip,
}

var layerValues = map[string]attack.Layer{
	"application": attack.ApplicationLayer,
	"transport":   attack.TransportLayer,
	"network":     attack.NetworkLayer,
}

// kindValues relies on kindCanon listing the faults taxonomy in the
// package's own declaration order.
func kindValue(name string) faults.Kind {
	for i, k := range kindCanon {
		if k == name {
			return faults.Kind(i)
		}
	}
	panic(fmt.Sprintf("scenario: unvalidated fault kind %q", name))
}

func compileRun(s *Scenario, run *RunSpec, o experiments.Options, label string,
	horizon float64) (core.Config, RunMeta, error) {
	pick := func(override, base string) string {
		if override != "" {
			return override
		}
		return base
	}
	schemeName := pick(run.Scheme, s.Defense.Scheme)
	budgetName := pick(run.Budget, s.Cluster.Budget)
	fwMode := pick(run.Firewall, s.Defense.Firewall)
	meta := RunMeta{Name: run.Name, Label: label, Scheme: schemeName, Budget: budgetName}

	cfg := core.Config{
		Cluster:               cluster.DefaultConfig(),
		Policy:                netlb.LeastLoaded,
		NormalRPS:             s.Workload.NormalRPS,
		NormalSources:         s.Workload.NormalSources,
		Horizon:               horizon,
		SlotSec:               s.Sim.Slot,
		WarmupSec:             s.Sim.Warmup,
		DopeEpochSec:          s.Sim.DopeEpoch,
		DopeEffectiveSlowdown: s.Sim.DopeSlowdown,
		Seed:                  o.SeedFor(label),
	}
	if s.Defense.Policy == "round-robin" {
		cfg.Policy = netlb.RoundRobin
	}
	cfg.Cluster.Budget = budgetLevels[budgetName]
	if s.Cluster.Servers > 0 {
		cfg.Cluster.Servers = s.Cluster.Servers
	}
	if s.Cluster.BatteryAutonomySec > 0 {
		cfg.Cluster.BatteryAutonomySec = s.Cluster.BatteryAutonomySec
	}
	if s.Cluster.BatterySustainFrac > 0 {
		cfg.Cluster.BatterySustainW = s.Cluster.BatterySustainFrac *
			float64(cfg.Cluster.Servers) * cfg.Cluster.Model.Nameplate
	}

	scheme := experiments.SchemeByName(schemeName)
	if ad, ok := scheme.(*defense.AntiDope); ok && s.Defense.SuspectPoolFrac > 0 {
		ad.SuspectPoolFrac = s.Defense.SuspectPoolFrac
	}
	cfg.Scheme = scheme

	switch fwMode {
	case "off":
		cfg.Firewall = firewall.Config{Disabled: true}
	case "on":
		cfg.Firewall = firewall.DefaultConfig()
	case "limit":
		cfg.Firewall = firewall.DefaultConfig()
		cfg.Firewall.Limit = true
	}

	switch s.Workload.Mix {
	case "eval":
		cfg.ExtraSources = experiments.EvalLegitSources()
	case "fig18":
		cfg.ExtraSources = experiments.Fig18LegitSources()
	}

	prog := &s.Attack
	if run.Attack != nil {
		prog = run.Attack
	}
	for _, f := range prog.Floods {
		rate := f.Rate
		if run.Rate != nil {
			rate = *run.Rate
		}
		if rate <= 0 {
			continue // the FloodJob convention: a zero rate means no attack
		}
		agents := f.Agents
		if agents == 0 {
			agents = int(rate / 100)
			if agents < 4 {
				agents = 4
			}
		}
		dur := f.Duration
		//lint:allow floateq -- exact zero marks an unset config field
		if dur == 0 {
			dur = horizon - f.Start
		}
		name := f.Name
		if name == "" {
			name = label
		}
		cfg.Attacks = append(cfg.Attacks, attack.Spec{
			Name:     name,
			Layer:    layerValues[f.Layer],
			Class:    classValues[f.Class],
			RateRPS:  rate,
			Agents:   agents,
			Start:    f.Start,
			Duration: dur,
		})
	}
	if sw := prog.Switching; sw != nil {
		cfg.Attacks = append(cfg.Attacks,
			experiments.SwitchingAttackSpecs(sw.Start, horizon, sw.Period)...)
	}
	if dp := prog.Dope; dp != nil {
		dc := attack.DopeConfig{
			Targets:      attack.SelectTargets(dp.Targets),
			InitialRPS:   dp.InitialRPS,
			MaxRPS:       dp.MaxRPS,
			Growth:       dp.Growth,
			Backoff:      dp.Backoff,
			SafetyMargin: dp.SafetyMargin,
			Agents:       dp.Agents,
			MaxAgents:    dp.MaxAgents,
		}
		cfg.Dope = &dc
		cfg.DopeStart = dp.Start
	}

	fl := s.Faults
	if run.Faults != nil {
		fl = run.Faults
	}
	if fl != nil {
		fc := &faults.Config{}
		for _, ev := range fl.Events {
			fc.Events = append(fc.Events, faults.Event{
				Kind:     kindValue(ev.Kind),
				At:       ev.At,
				Duration: ev.Duration,
				Server:   ev.Server,
				Param:    ev.Param,
			})
		}
		if g := fl.Generator; g != nil {
			gc := faults.GeneratorConfig{
				Horizon:         horizon,
				Servers:         cfg.Cluster.Servers,
				Crashes:         g.Crashes,
				TelemetryFaults: g.Telemetry,
				DVFSFaults:      g.DVFS,
				FirewallFlaps:   g.FirewallFlaps,
				BatteryFaults:   g.Battery,
				NetFaults:       g.Net,
				BatteryFadeTo:   g.FadeTo,
				MeanFaultSec:    g.MeanFaultSec,
			}
			gc = gc.Scaled(g.Intensity)
			gc.Seed = o.SeedFor(g.SeedLabel)
			fc.Generator = &gc
		}
		cfg.Faults = fc
	}

	if err := cfg.Validate(); err != nil {
		return core.Config{}, RunMeta{}, fmt.Errorf("scenario %s: run %q: %w", s.Name, label, err)
	}
	return cfg, meta, nil
}
