package scenario_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"antidope/internal/experiments"
	"antidope/internal/scenario"
)

// FuzzScenario drives arbitrary bytes through the whole DSL front end:
//
//   - Parse never panics, and every rejection is a structured *Error;
//   - any accepted document normalizes to a canonical form that replays
//     byte-identically from its own serialization (parse -> normalize ->
//     marshal is a fixed point);
//   - compilation from the canonical form is deterministic: the same
//     document always yields the same run labels and seeds, or the same
//     error.
//
// No simulation runs here — the target stays fast enough for the CI fuzz
// smoke while still covering the parser, normalizer, emitter and compiler.
func FuzzScenario(f *testing.F) {
	// The checked-in library seeds the corpus with every feature in use.
	entries, err := os.ReadDir("../../scenarios")
	if err != nil {
		f.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		raw, err := os.ReadFile(filepath.Join("../../scenarios", e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	// Hand-picked edges: minimal, JSON, matrix sugar, and near-miss inputs.
	f.Add([]byte("scenario: t\nsim:\n  horizon: 60\n"))
	f.Add([]byte(`{"scenario": "j", "sim": {"horizon": 60}}`))
	f.Add([]byte("scenario: m\nsim:\n  horizon: 60\nmatrix:\n  schemes: [capping, token]\n  budgets: [low, high]\n"))
	f.Add([]byte("scenario: d\nsim:\n  horizon: 60\nattack:\n  dope:\n    start: 10\n"))
	f.Add([]byte("scenario: f\nsim:\n  horizon: 60\nfaults:\n  events:\n    - kind: server-crash\n      at: 5\n      duration: 3\n"))
	f.Add([]byte("scenario: n\nsim:\n  horizon: 60\nfaults:\n  events:\n    - kind: net-loss\n      at: 5\n      duration: 3\n      server: 1\n      param: 0.5\n    - kind: net-partition\n      at: 10\n      duration: 4\n      server: 0\n  generator:\n    net: 2\n"))
	f.Add([]byte("scenario: t\nsim:\n\thorizon: 60\n"))
	f.Add([]byte("scenario: t\nsim:\n  horizon: 1e309\n"))
	f.Add([]byte(""))
	f.Add([]byte("#"))
	f.Add([]byte("{"))
	f.Add([]byte("scenario: \"a\\t\"\nsim:\n  horizon: 60\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := scenario.Parse("fuzz.yaml", data)
		if err != nil {
			var se *scenario.Error
			if !errors.As(err, &se) {
				t.Fatalf("parse rejection is %T, want *scenario.Error: %v", err, err)
			}
			return
		}
		ns, err := scenario.Normalize(s)
		if err != nil {
			var se *scenario.Error
			if !errors.As(err, &se) {
				t.Fatalf("normalize rejection is %T, want *scenario.Error: %v", err, err)
			}
			return
		}

		// Canonical fixed point: the serialization must re-parse, and its
		// normal form must re-serialize to the same bytes.
		c1 := scenario.Marshal(ns)
		s2, err := scenario.Parse("canon.yaml", c1)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, c1)
		}
		ns2, err := scenario.Normalize(s2)
		if err != nil {
			t.Fatalf("canonical form does not re-normalize: %v\n%s", err, c1)
		}
		c2 := scenario.Marshal(ns2)
		if !bytes.Equal(c1, c2) {
			t.Fatalf("canonical form is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", c1, c2)
		}

		// Compile determinism: same document, same plan (or same error).
		opts := experiments.Options{Seed: 7, Quick: true}
		p1, err1 := scenario.Compile(ns, opts)
		p2, err2 := scenario.Compile(ns2, opts)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("compile determinism: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if err1.Error() != err2.Error() {
				t.Fatalf("compile errors differ: %q vs %q", err1, err2)
			}
			return
		}
		if fp1, fp2 := planFingerprint(p1), planFingerprint(p2); fp1 != fp2 {
			t.Fatalf("plan fingerprints differ:\n%s\nvs\n%s", fp1, fp2)
		}
	})
}

// planFingerprint condenses a compiled plan to its identity-bearing parts.
func planFingerprint(p *scenario.Plan) string {
	var b strings.Builder
	fmt.Fprintf(&b, "horizon=%g\n", p.Horizon)
	for i, j := range p.Jobs {
		fmt.Fprintf(&b, "%s seed=%d scheme=%s budget=%v horizon=%g attacks=%d\n",
			j.Label, j.Config.Seed, p.Metas[i].Scheme, j.Config.Cluster.Budget,
			j.Config.Horizon, len(j.Config.Attacks))
	}
	return b.String()
}
