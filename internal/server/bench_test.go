package server

import (
	"testing"

	"antidope/internal/power"
	"antidope/internal/workload"
)

// benchServer returns a server with n in-flight requests spread across the
// victim classes, each with enough demand that no benchmark loop completes
// one — so Advance exercises the pure share-recompute path.
func benchServer(n int) *Server {
	s := MustNew(Config{ID: 0, Cores: 4, MaxInflight: n + 1, Model: power.DefaultModel()})
	classes := workload.VictimClasses()
	s.Advance(0)
	for i := 0; i < n; i++ {
		r := fixedReq(uint64(i+1), classes[i%len(classes)], 1e12)
		if !s.Admit(0, r) {
			panic("benchServer: admit failed")
		}
	}
	return s
}

// BenchmarkAdvance measures the per-event share/remaining-work recompute:
// one Advance over a populated active set with no completions.
func BenchmarkAdvance(b *testing.B) {
	s := benchServer(32)
	now := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 1e-6
		s.Advance(now)
	}
}

// BenchmarkNextCompletion measures the earliest-completion scan, the other
// half of every completion-rescheduling decision.
func BenchmarkNextCompletion(b *testing.B) {
	s := benchServer(32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.NextCompletion(); !ok {
			b.Fatal("no completion")
		}
	}
}

// BenchmarkPowerAt measures one un-memoized power evaluation at the current
// operating point: active-set mix summary plus the analytic model.
func BenchmarkPowerAt(b *testing.B) {
	s := benchServer(32)
	f := s.Freq()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.PowerAt(f)
	}
}

// BenchmarkAdvanceCompleting measures Advance when every call harvests
// completions. The one request is hoisted out of the timed loop and reset by
// value each iteration — each completion fully retires it — so the loop
// measures only the admit/advance/harvest cycle, which is allocation-free.
func BenchmarkAdvanceCompleting(b *testing.B) {
	s := MustNew(Config{ID: 0, Cores: 4, MaxInflight: 8, Model: power.DefaultModel()})
	now := 0.0
	s.Advance(now)
	r := fixedReq(0, workload.CollaFilt, 1e-6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		*r = workload.Request{ID: uint64(i + 1), Class: workload.CollaFilt, Demand: 1e-6, Remaining: 1e-6}
		if !s.Admit(now, r) {
			b.Fatal("admit failed")
		}
		now += 1
		if got := len(s.Advance(now)); got != 1 {
			b.Fatalf("completions = %d, want 1", got)
		}
	}
}
