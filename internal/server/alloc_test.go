package server

import (
	"testing"

	"antidope/internal/obs"
	"antidope/internal/workload"
)

// TestHotPathAllocFree locks in the zero-allocation property of the
// per-event server hot path: share recompute (Advance with no completions),
// the earliest-completion scan, and the memoized power lookup. A regression
// here reintroduces per-event garbage across every simulated second.
func TestHotPathAllocFree(t *testing.T) {
	s := benchServer(32)
	now := 0.0
	f := s.Freq()

	if n := testing.AllocsPerRun(200, func() {
		now += 1e-6
		s.Advance(now)
	}); n != 0 {
		t.Errorf("Advance allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := s.NextCompletion(); !ok {
			t.Fatal("no completion")
		}
	}); n != 0 {
		t.Errorf("NextCompletion allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = s.PowerAt(f)
		_ = s.PowerNow()
	}); n != 0 {
		t.Errorf("PowerAt/PowerNow allocates %v per run, want 0", n)
	}

	// Admitting work invalidates the cached mix; the next lookups rebuild it
	// in place and must stay allocation-free too.
	if !s.Admit(now, fixedReq(9001, workload.CollaFilt, 1e12)) {
		t.Fatal("admit failed")
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = s.PowerNow()
	}); n != 0 {
		t.Errorf("PowerNow after Admit allocates %v per run, want 0", n)
	}

	// The nil-observer emission guards must cost nothing: CapFreq changes
	// frequency (the event-bearing path) with no observer installed.
	ladder := s.Model.Ladder
	lo, hi := ladder.Level(0), ladder.Max
	flip := false
	if n := testing.AllocsPerRun(200, func() {
		if flip = !flip; flip {
			s.CapFreq(lo)
		} else {
			s.CapFreq(hi)
		}
	}); n != 0 {
		t.Errorf("CapFreq with nil observer allocates %v per run, want 0", n)
	}
}

// TestHotPathAllocFreeObserved locks in the enabled-observer budget: once
// the bus's event pool is warm, emitting through the server hot path
// recycles pooled chunks and allocates nothing per event — including the
// timeline fold, which is armed here so its window accounting rides the
// same budget.
func TestHotPathAllocFreeObserved(t *testing.T) {
	bus := obs.NewBus()
	bus.EnableTimeline(1.0, 0.25)
	// Warm the pool past two chunks, then reset: steady-state emission now
	// draws from the free list instead of growing the heap.
	for i := 0; i < 10000; i++ {
		bus.Emit(obs.Event{Kind: obs.KindSample})
	}
	bus.BeginRun()

	s := benchServer(32)
	s.SetObserver(bus)
	now := 0.0
	if n := testing.AllocsPerRun(200, func() {
		now += 1e-6
		s.Advance(now)
	}); n != 0 {
		t.Errorf("observed Advance allocates %v per run, want 0", n)
	}
	ladder := s.Model.Ladder
	lo, hi := ladder.Level(0), ladder.Max
	flip := false
	if n := testing.AllocsPerRun(200, func() {
		if flip = !flip; flip {
			s.CapFreq(lo)
		} else {
			s.CapFreq(hi)
		}
	}); n != 0 {
		t.Errorf("observed CapFreq allocates %v per run, want 0", n)
	}
	if bus.Events().Len() < 200 {
		t.Fatalf("events were not recorded: %d", bus.Events().Len())
	}
}
