package server

import (
	"testing"

	"antidope/internal/workload"
)

// TestHotPathAllocFree locks in the zero-allocation property of the
// per-event server hot path: share recompute (Advance with no completions),
// the earliest-completion scan, and the memoized power lookup. A regression
// here reintroduces per-event garbage across every simulated second.
func TestHotPathAllocFree(t *testing.T) {
	s := benchServer(32)
	now := 0.0
	f := s.Freq()

	if n := testing.AllocsPerRun(200, func() {
		now += 1e-6
		s.Advance(now)
	}); n != 0 {
		t.Errorf("Advance allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, ok := s.NextCompletion(); !ok {
			t.Fatal("no completion")
		}
	}); n != 0 {
		t.Errorf("NextCompletion allocates %v per run, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = s.PowerAt(f)
		_ = s.PowerNow()
	}); n != 0 {
		t.Errorf("PowerAt/PowerNow allocates %v per run, want 0", n)
	}

	// Admitting work invalidates the cached mix; the next lookups rebuild it
	// in place and must stay allocation-free too.
	if !s.Admit(now, fixedReq(9001, workload.CollaFilt, 1e12)) {
		t.Fatal("admit failed")
	}
	if n := testing.AllocsPerRun(200, func() {
		_ = s.PowerNow()
	}); n != 0 {
		t.Errorf("PowerNow after Admit allocates %v per run, want 0", n)
	}
}
