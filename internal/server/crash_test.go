package server

import (
	"testing"

	"antidope/internal/workload"
)

func TestCrashDetachesWithoutDropping(t *testing.T) {
	s := testServer()
	s.Advance(0)
	a := fixedReq(1, workload.CollaFilt, 0.5)
	b := fixedReq(2, workload.KMeans, 0.5)
	s.Admit(0, a)
	s.Admit(0, b)
	s.Advance(0.05)

	orphans := s.Crash(0.05)
	if len(orphans) != 2 {
		t.Fatalf("crash detached %d requests, want 2", len(orphans))
	}
	for _, r := range orphans {
		if r.Dropped {
			t.Fatalf("crash marked request %d dropped; the caller decides its fate", r.ID)
		}
	}
	if s.Up() {
		t.Fatal("server still Up after Crash")
	}
	if s.Inflight() != 0 {
		t.Fatalf("crashed server holds %d in-flight", s.Inflight())
	}
	if got := s.PowerNow(); got != 0 {
		t.Fatalf("crashed server draws %g W, want 0", got)
	}
	if got := s.PowerAt(s.Model.Ladder.Max); got != 0 {
		t.Fatalf("crashed server predicts %g W, want 0", got)
	}
	if _, ok := s.NextCompletion(); ok {
		t.Fatal("crashed server still predicts a completion")
	}
	// Double crash is inert.
	if again := s.Crash(0.05); again != nil {
		t.Fatalf("second Crash returned %d requests", len(again))
	}
}

func TestCrashedServerRejectsAdmits(t *testing.T) {
	s := testServer()
	s.Advance(0)
	s.Crash(0)
	r := fixedReq(3, workload.AliNormal, 0.1)
	s.Advance(1)
	if s.Admit(1, r) {
		t.Fatal("crashed server admitted a request")
	}
	if !r.Dropped || r.DropReason != "server-down" {
		t.Fatalf("rejection not labeled: dropped=%v reason=%q", r.Dropped, r.DropReason)
	}
	if s.Rejected() != 1 {
		t.Fatalf("rejected counter %d, want 1", s.Rejected())
	}
}

func TestRecoverRebootsAtFullFrequency(t *testing.T) {
	s := testServer()
	s.Advance(0)
	// Throttle to the ladder floor, then crash and recover: the reboot
	// forgets the throttle.
	s.CapFreq(s.Model.Ladder.Level(0))
	s.Crash(0)
	s.Advance(5)
	s.Recover(5)
	if !s.Up() {
		t.Fatal("server not Up after Recover")
	}
	//lint:allow floateq -- both sides come from the same discrete DVFS ladder
	if s.Freq() != s.Model.Ladder.Max {
		t.Fatalf("recovered at %g GHz, want ladder max %g", s.Freq(), s.Model.Ladder.Max)
	}
	if got := s.PowerNow(); got <= 0 {
		t.Fatalf("recovered idle server draws %g W, want positive idle floor", got)
	}
	r := fixedReq(4, workload.AliNormal, 0.1)
	if !s.Admit(5, r) {
		t.Fatal("recovered server rejected a request")
	}
	// Recover on an up server is inert.
	s.Recover(5)
	if !s.Up() {
		t.Fatal("redundant Recover flipped the server down")
	}
}

func TestCrashedServerConsumesNoEnergy(t *testing.T) {
	s := testServer()
	s.Advance(0)
	s.Crash(0)
	before := s.EnergyJ()
	s.Advance(100)
	if got := s.EnergyJ(); got != before {
		t.Fatalf("crashed server integrated %g J while down", got-before)
	}
}
