// Package server models one leaf node: a multi-core processor-sharing
// queue whose service speed depends on the DVFS frequency and on each
// request's frequency sensitivity, and whose power draw follows the
// per-type model of internal/power.
//
// The dynamics are exact between events: while the active set and the
// frequency are unchanged, every request progresses linearly, so the next
// completion instant can be computed in closed form and the power draw is
// piecewise constant. The simulation driver advances servers lazily.
//
// The per-event math is memoized (see DESIGN.md "Performance model"): the
// per-class speed factors pow(f/f_max, beta) are recomputed only when the
// frequency moves, the power model's ladder terms live in a precomputed
// power.Table, and the active-set mix summary is cached under the server's
// version counter — so the arrival/completion path does table lookups
// instead of math.Pow.
package server

import (
	"fmt"
	"math"

	"antidope/internal/obs"
	"antidope/internal/power"
	"antidope/internal/workload"
)

// Server is one simulated node. It is not safe for concurrent use; the
// simulator is single-goroutine by design.
type Server struct {
	ID    int
	Cores int
	// MaxInflight bounds the active set; arrivals beyond it are rejected,
	// which is what degrades "service availability" in Figure 9.
	MaxInflight int
	Model       power.Model

	// Suspect marks nodes the Anti-DOPE PDF module routes risky traffic to.
	Suspect bool

	freq power.GHz
	// The active set is a struct-of-arrays ledger: active[i], actRem[i] and
	// actCls[i] describe one in-service request. The hot loops (Advance,
	// NextCompletion, mix) walk the two scalar slices without chasing the
	// request pointers; actRem is the authoritative remaining demand while a
	// request is in service, written back to Request.Remaining only when the
	// request leaves the server (completion, crash, outage).
	active  []*workload.Request
	actRem  []float64
	actCls  []workload.Class
	lastAdv float64
	version uint64
	// down marks a crashed node (fault injection): it draws no power,
	// admits nothing, and rejoins only through Recover.
	down bool

	// Accounting.
	energyJ       float64
	busyCoreSecs  float64
	completed     uint64
	rejected      uint64
	lastPower     float64
	powerDirty    bool
	demandServed  float64
	freqChangeCnt uint64

	// perf is the per-class profile cache; an array because the class space
	// is small, dense and hit on every request advance.
	perf [workload.NumClasses]profileCache
	// clsCounts tracks the active set's per-class population incrementally
	// (admit ++, completion --, eviction reset), so the mix summary rebuild
	// is O(classes) instead of an O(active) rescan per version bump.
	clsCounts [workload.NumClasses]int
	// speedTab[c] is pow(Rel(freq), beta_c) at the current frequency — the
	// demand-depletion factor of class c — recomputed only on CapFreq.
	speedTab [workload.NumClasses]float64
	// ptab memoizes the power model's frequency terms per ladder level,
	// with one exponent slot per class (Exp = int(class)).
	ptab *power.Table
	// mixBuf is the cached active-set mix summary; mixVer stamps the server
	// version it was built at so arrivals/completions invalidate it.
	mixBuf   []power.IndexedComponent
	mixVer   uint64
	mixValid bool
	// doneBuf backs the slice Advance returns, reused across calls.
	doneBuf []*workload.Request

	// obs receives lifecycle events; nil (the default) keeps the hot path
	// allocation-free behind single branches (see TestHotPathAllocFree).
	obs obs.Observer
}

type profileCache struct {
	beta   float64
	weight float64
	alpha  float64
}

// Config carries construction parameters.
type Config struct {
	ID          int
	Cores       int
	MaxInflight int
	Model       power.Model
}

// New builds a server at the ladder maximum frequency.
func New(cfg Config) (*Server, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("server %d: cores %d must be positive", cfg.ID, cfg.Cores)
	}
	if cfg.MaxInflight <= 0 {
		return nil, fmt.Errorf("server %d: max inflight %d must be positive", cfg.ID, cfg.MaxInflight)
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("server %d: %w", cfg.ID, err)
	}
	s := &Server{
		ID:          cfg.ID,
		Cores:       cfg.Cores,
		MaxInflight: cfg.MaxInflight,
		Model:       cfg.Model,
		freq:        cfg.Model.Ladder.Max,
		powerDirty:  true,
	}
	var alphas [workload.NumClasses]float64
	for c := workload.Class(0); int(c) < workload.NumClasses; c++ {
		p := workload.Lookup(c)
		s.perf[c] = profileCache{beta: p.PerfBeta, weight: p.PowerWeight, alpha: p.PowerAlpha}
		alphas[c] = p.PowerAlpha
	}
	s.ptab = power.NewTable(cfg.Model, alphas[:])
	s.refreshSpeedTab()
	return s, nil
}

// MustNew is New for tests and examples with known-good configs.
func MustNew(cfg Config) *Server {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// refreshSpeedTab recomputes the per-class depletion factors for the
// current frequency. This is the only math.Pow site left on the simulation
// path, and it runs per frequency change, not per request.
func (s *Server) refreshSpeedTab() {
	rel := s.Model.Ladder.Rel(s.freq)
	for c := range s.perf {
		s.speedTab[c] = math.Pow(rel, s.perf[c].beta)
	}
}

// SetObserver installs the event sink. Pass nil to detach.
func (s *Server) SetObserver(o obs.Observer) { s.obs = o }

// Clone returns an independent deep copy for snapshot forking. In-service
// requests are copied struct-by-struct — both sides keep depleting their own
// ledgers — while the read-only power table is shared. Caches that are pure
// derivations (mix summary, done buffer) start cold on the clone; the
// observer is detached, matching Snapshot's unobserved-run precondition.
func (s *Server) Clone() *Server {
	c := *s
	c.active = make([]*workload.Request, len(s.active))
	for i, r := range s.active {
		cp := *r
		c.active[i] = &cp
	}
	c.actRem = append([]float64(nil), s.actRem...)
	c.actCls = append([]workload.Class(nil), s.actCls...)
	c.mixBuf = nil
	c.mixValid = false
	c.doneBuf = nil
	c.obs = nil
	return &c
}

// Version increments whenever the server's dynamics change (arrival,
// completion, frequency change). The simulation driver stamps scheduled
// completion events with it to invalidate stale events cheaply.
func (s *Server) Version() uint64 { return s.version }

// Inflight returns the number of requests currently in service.
func (s *Server) Inflight() int { return len(s.active) }

// Completed returns the count of finished requests.
func (s *Server) Completed() uint64 { return s.completed }

// Rejected returns the count of admission rejections.
func (s *Server) Rejected() uint64 { return s.rejected }

// EnergyJ returns integrated energy since construction.
func (s *Server) EnergyJ() float64 { return s.energyJ }

// BusyCoreSeconds returns accumulated busy core-time, for utilization math.
func (s *Server) BusyCoreSeconds() float64 { return s.busyCoreSecs }

// FreqChanges returns how many times the operating frequency moved, a proxy
// for actuation churn.
func (s *Server) FreqChanges() uint64 { return s.freqChangeCnt }

// share returns the core share each active request receives.
//
//hot:allocfree
func (s *Server) share() float64 {
	n := len(s.active)
	if n == 0 {
		return 0
	}
	if n <= s.Cores {
		return 1
	}
	return float64(s.Cores) / float64(n)
}

// Advance moves the server's internal clock to now, depleting demand and
// integrating energy. It returns requests that completed, with FinishAt
// set. Advance must be called with non-decreasing now.
//
// The returned slice is owned by the server and reused: it is valid until
// the next Advance or FailAll call. Callers that need the requests longer
// must copy them out first; the simulation driver consumes them in place.
//
//hot:allocfree
func (s *Server) Advance(now float64) []*workload.Request {
	dt := now - s.lastAdv
	if dt < 0 {
		panic(fmt.Sprintf("server %d: advance backwards %.9f -> %.9f", s.ID, s.lastAdv, now))
	}
	if dt == 0 { //lint:allow floateq -- exact re-advance to the same event instant
		return nil
	}
	// Power and speeds are constant over (lastAdv, now] because the driver
	// always advances to the next event boundary.
	s.energyJ += s.PowerNow() * dt
	s.busyCoreSecs += s.share() * float64(len(s.active)) * dt

	var done []*workload.Request
	if n := len(s.active); n > 0 {
		done = s.doneBuf[:0]
		sh := s.share()
		act, rem, cls := s.active, s.actRem, s.actCls
		w := 0
		for i := 0; i < n; i++ {
			left := rem[i] - sh*s.speedTab[cls[i]]*dt
			if left <= 1e-9 {
				r := act[i]
				r.Remaining = 0
				r.FinishAt = now
				s.clsCounts[cls[i]]--
				s.completed++
				s.demandServed += r.Demand
				done = append(done, r)
				if s.obs != nil {
					s.obs.Emit(obs.Event{
						T: now, Kind: obs.KindReqComplete,
						Server: int32(s.ID), Class: int32(r.Class), ID: r.ID,
						//lint:allow hotalloc -- inlined Class.String: only its invalid-class fallback boxes, never taken here
						A: r.StartAt, B: now - r.ArriveAt, Label: r.Class.String(),
					})
				}
			} else {
				act[w], rem[w], cls[w] = act[i], left, cls[i]
				w++
			}
		}
		// Zero the vacated pointer tail so the backing array does not pin
		// completed requests after they are recycled.
		for i := w; i < n; i++ {
			act[i] = nil
		}
		s.active, s.actRem, s.actCls = act[:w], rem[:w], cls[:w]
		s.doneBuf = done
		if len(done) > 0 {
			s.version++
			s.powerDirty = true
		} else {
			done = nil
		}
	}
	s.lastAdv = now
	return done
}

// Admit places a request in service at time now. The caller must have
// advanced the server to now first. It returns false (and marks the request
// dropped) when the inflight bound is hit.
//
//hot:allocfree
func (s *Server) Admit(now float64, r *workload.Request) bool {
	//lint:allow floateq -- contract check: caller must pass the exact advance instant
	if now != s.lastAdv {
		panic(fmt.Sprintf("server %d: admit at %.9f without advance (at %.9f)", s.ID, now, s.lastAdv))
	}
	if s.down {
		s.rejected++
		r.Dropped = true
		r.DropReason = "server-down"
		return false
	}
	if len(s.active) >= s.MaxInflight {
		s.rejected++
		r.Dropped = true
		r.DropReason = "server-queue-full"
		return false
	}
	r.StartAt = now
	s.active = append(s.active, r)
	s.actRem = append(s.actRem, r.Remaining)
	s.actCls = append(s.actCls, r.Class)
	s.clsCounts[r.Class]++
	s.version++
	s.powerDirty = true
	if s.obs != nil {
		s.obs.Emit(obs.Event{
			T: now, Kind: obs.KindReqStart,
			Server: int32(s.ID), Class: int32(r.Class), ID: r.ID,
			//lint:allow hotalloc -- inlined Class.String: only its invalid-class fallback boxes, never taken here
			Label: r.Class.String(),
		})
	}
	return true
}

// NextCompletion returns the absolute time of the earliest completion under
// the current operating point, or ok=false when idle.
//
//hot:allocfree
func (s *Server) NextCompletion() (at float64, ok bool) {
	if len(s.active) == 0 {
		return 0, false
	}
	best := math.Inf(1)
	sh := s.share()
	rem, cls := s.actRem, s.actCls
	for i := range rem {
		sp := sh * s.speedTab[cls[i]]
		if sp <= 0 {
			continue
		}
		t := rem[i] / sp
		if t < best {
			best = t
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return s.lastAdv + best, true
}

// mix summarizes the active set as indexed power-model components, one per
// class, cached under the version counter so repeated power queries at an
// unchanged operating point (the governors' planning loops) reuse it.
//
//hot:allocfree
func (s *Server) mix() []power.IndexedComponent {
	if s.mixValid && s.mixVer == s.version {
		return s.mixBuf
	}
	s.mixBuf = s.mixBuf[:0]
	if len(s.active) > 0 {
		share := s.share()
		for c, n := range s.clsCounts {
			if n == 0 {
				continue
			}
			s.mixBuf = append(s.mixBuf, power.IndexedComponent{
				Util:   float64(n) * share / float64(s.Cores),
				Weight: s.perf[c].weight,
				Exp:    c,
			})
		}
	}
	s.mixVer = s.version
	s.mixValid = true
	return s.mixBuf
}

// PowerNow returns the instantaneous draw at the current operating point.
// A crashed node draws nothing.
//
//hot:allocfree
func (s *Server) PowerNow() power.Watts {
	if s.down {
		return 0
	}
	if s.powerDirty {
		s.lastPower = s.ptab.Power(s.freq, s.mix())
		s.powerDirty = false
	}
	return s.lastPower
}

// PowerAt predicts the draw if the frequency were capped to f with the
// current load mix — the governor's planning primitive. A crashed node
// predicts zero at every level, so governors see no savings in it.
//
//hot:allocfree
func (s *Server) PowerAt(f power.GHz) power.Watts {
	if s.down {
		return 0
	}
	return s.ptab.Power(f, s.mix())
}

// Freq returns the current operating frequency.
func (s *Server) Freq() power.GHz { return s.freq }

// CapFreq snaps the server to the given ladder level. The caller must have
// advanced the server to the decision instant first, because a frequency
// change alters all in-flight completion times.
//
//hot:allocfree
func (s *Server) CapFreq(f power.GHz) {
	nf := s.Model.Ladder.Clamp(f)
	//lint:allow floateq -- both sides come from the same discrete DVFS ladder
	if nf == s.freq {
		return
	}
	old := s.freq
	s.freq = nf
	s.version++
	s.powerDirty = true
	s.freqChangeCnt++
	s.refreshSpeedTab()
	if s.obs != nil {
		s.obs.Emit(obs.Event{
			T: s.lastAdv, Kind: obs.KindFreqChange,
			Server: int32(s.ID), A: float64(old), B: float64(nf),
		})
	}
}

// Utilization returns the fraction of core capacity in use right now.
func (s *Server) Utilization() float64 {
	return s.share() * float64(len(s.active)) / float64(s.Cores)
}

// ClassCounts returns the number of in-service requests per class.
func (s *Server) ClassCounts() map[workload.Class]int {
	out := make(map[workload.Class]int)
	for c, n := range s.clsCounts {
		if n > 0 {
			out[workload.Class(c)] = n
		}
	}
	return out
}

// DrainDeadline estimates when the server would drain if no more arrivals
// came, for battery-autonomy planning. Returns 0 when idle.
func (s *Server) DrainDeadline() float64 {
	total := 0.0
	for i, rm := range s.actRem {
		total += rm / s.speedTab[s.actCls[i]]
	}
	if total == 0 { //lint:allow floateq -- exact: a sum of non-negatives is 0 iff no work remains
		return 0
	}
	// Work conserves: total core-seconds left divided by core capacity.
	return s.lastAdv + total/float64(s.Cores)
}

// detach hands the whole active set to the caller: the ledger's remaining
// demand is written back into each request (the structs are stale while in
// service), the pointer slice is surrendered, and the scalar columns are
// truncated for reuse. Only the bulk-eviction paths (FailAll, Crash) use it.
func (s *Server) detach() []*workload.Request {
	out := s.active
	for i, r := range out {
		r.Remaining = s.actRem[i]
	}
	s.active = nil
	s.actRem = s.actRem[:0]
	s.actCls = s.actCls[:0]
	s.clsCounts = [workload.NumClasses]int{}
	return out
}

var _ power.Capper = (*Server)(nil)

// FailAll drops every in-flight request, modeling a power-loss event in the
// server's domain (breaker trip). The caller must have advanced the server
// to now first. The dropped requests are returned for accounting; the
// server itself is immediately reusable once the caller's outage window
// ends.
func (s *Server) FailAll(now float64) []*workload.Request {
	//lint:allow floateq -- contract check: caller must pass the exact advance instant
	if now != s.lastAdv {
		panic(fmt.Sprintf("server %d: fail at %.9f without advance (at %.9f)", s.ID, now, s.lastAdv))
	}
	if len(s.active) == 0 {
		return nil
	}
	failed := s.detach()
	for _, r := range failed {
		r.Dropped = true
		r.DropReason = "outage"
	}
	s.rejected += uint64(len(failed))
	s.version++
	s.powerDirty = true
	return failed
}

// Up reports whether the node is serving (not crashed).
func (s *Server) Up() bool { return !s.down }

// Crash takes the node down, detaching its in-flight requests WITHOUT
// marking them dropped: unlike a domain-wide outage (FailAll), a single
// node's crash leaves the rest of the cluster up, so the caller decides
// each orphan's fate — typically re-routing it through the balancer. The
// caller must have advanced the server to now first. The returned slice is
// owned by the caller. Crashing a crashed node is a no-op returning nil.
func (s *Server) Crash(now float64) []*workload.Request {
	//lint:allow floateq -- contract check: caller must pass the exact advance instant
	if now != s.lastAdv {
		panic(fmt.Sprintf("server %d: crash at %.9f without advance (at %.9f)", s.ID, now, s.lastAdv))
	}
	if s.down {
		return nil
	}
	s.down = true
	orphans := s.detach()
	s.version++
	s.powerDirty = true
	if s.obs != nil {
		s.obs.Emit(obs.Event{T: now, Kind: obs.KindServerCrash, Server: int32(s.ID)})
	}
	return orphans
}

// Recover reboots a crashed node at the ladder maximum — a reboot forgets
// any throttle state the governor had imposed — with an empty queue. The
// caller must have advanced the server to now first. Recovering an up node
// is a no-op.
func (s *Server) Recover(now float64) {
	//lint:allow floateq -- contract check: caller must pass the exact advance instant
	if now != s.lastAdv {
		panic(fmt.Sprintf("server %d: recover at %.9f without advance (at %.9f)", s.ID, now, s.lastAdv))
	}
	if !s.down {
		return
	}
	s.down = false
	//lint:allow floateq -- both sides come from the same discrete DVFS ladder
	if s.freq != s.Model.Ladder.Max {
		old := s.freq
		s.freq = s.Model.Ladder.Max
		s.freqChangeCnt++
		s.refreshSpeedTab()
		if s.obs != nil {
			s.obs.Emit(obs.Event{
				T: now, Kind: obs.KindFreqChange,
				Server: int32(s.ID), A: float64(old), B: float64(s.freq),
			})
		}
	}
	s.version++
	s.powerDirty = true
	if s.obs != nil {
		s.obs.Emit(obs.Event{T: now, Kind: obs.KindServerRecover, Server: int32(s.ID)})
	}
}
