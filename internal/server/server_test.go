package server

import (
	"math"
	"testing"
	"testing/quick"

	"antidope/internal/power"
	"antidope/internal/rng"
	"antidope/internal/workload"
)

func testServer() *Server {
	return MustNew(Config{ID: 0, Cores: 4, MaxInflight: 64, Model: power.DefaultModel()})
}

func mkReq(f *workload.Factory, now float64, c workload.Class) *workload.Request {
	return f.New(now, c, workload.Legit, 1)
}

func fixedReq(id uint64, c workload.Class, demand float64) *workload.Request {
	return &workload.Request{ID: id, Class: c, Demand: demand, Remaining: demand}
}

func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Cores: 0, MaxInflight: 1, Model: power.DefaultModel()}); err == nil {
		t.Fatal("zero cores accepted")
	}
	if _, err := New(Config{Cores: 1, MaxInflight: 0, Model: power.DefaultModel()}); err == nil {
		t.Fatal("zero inflight accepted")
	}
	if _, err := New(Config{Cores: 1, MaxInflight: 1}); err == nil {
		t.Fatal("zero model accepted")
	}
}

func TestSingleRequestCompletesOnTime(t *testing.T) {
	s := testServer()
	r := fixedReq(1, workload.CollaFilt, 0.1) // beta=1, fmax: 0.1 s exactly
	s.Advance(0)
	if !s.Admit(0, r) {
		t.Fatal("admit failed")
	}
	at, ok := s.NextCompletion()
	if !ok || math.Abs(at-0.1) > 1e-9 {
		t.Fatalf("next completion %g, want 0.1", at)
	}
	done := s.Advance(at)
	if len(done) != 1 || done[0] != r {
		t.Fatalf("done %v", done)
	}
	if math.Abs(r.ResponseTime()-0.1) > 1e-9 {
		t.Fatalf("response time %g", r.ResponseTime())
	}
	if s.Inflight() != 0 || s.Completed() != 1 {
		t.Fatal("bookkeeping wrong after completion")
	}
}

func TestFrequencyStretchesService(t *testing.T) {
	s := testServer()
	r := fixedReq(1, workload.CollaFilt, 0.12) // beta = 1
	s.Advance(0)
	s.Admit(0, r)
	s.CapFreq(1.2) // half speed for beta=1
	at, ok := s.NextCompletion()
	if !ok || math.Abs(at-0.24) > 1e-6 {
		t.Fatalf("completion at %g, want 0.24", at)
	}
}

func TestBetaDampensSlowdown(t *testing.T) {
	// K-means (beta 0.55) must slow down less than Colla-Filt (beta 1.0)
	// for the same frequency cut.
	mk := func(c workload.Class) float64 {
		s := testServer()
		r := fixedReq(1, c, 0.1)
		s.Advance(0)
		s.Admit(0, r)
		s.CapFreq(1.2)
		at, _ := s.NextCompletion()
		return at / 0.1 // slowdown factor vs demand at fmax
	}
	if mk(workload.KMeans) >= mk(workload.CollaFilt) {
		t.Fatal("memory-bound class slowed down as much as compute-bound")
	}
}

func TestProcessorSharingBeyondCores(t *testing.T) {
	s := testServer() // 4 cores
	s.Advance(0)
	for i := 0; i < 8; i++ {
		s.Admit(0, fixedReq(uint64(i), workload.CollaFilt, 0.1))
	}
	// 8 requests share 4 cores: each runs at 1/2 speed.
	at, _ := s.NextCompletion()
	if math.Abs(at-0.2) > 1e-9 {
		t.Fatalf("PS completion %g, want 0.2", at)
	}
	if got := s.Utilization(); math.Abs(got-1) > 1e-9 {
		t.Fatalf("utilization %g, want 1", got)
	}
}

func TestUnderloadedEachRequestOwnCore(t *testing.T) {
	s := testServer()
	s.Advance(0)
	s.Admit(0, fixedReq(1, workload.CollaFilt, 0.1))
	s.Admit(0, fixedReq(2, workload.CollaFilt, 0.3))
	if got := s.Utilization(); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("utilization %g, want 0.5", got)
	}
	done := s.Advance(0.1)
	if len(done) != 1 || done[0].ID != 1 {
		t.Fatalf("wrong completion %v", done)
	}
}

func TestAdmissionBound(t *testing.T) {
	s := MustNew(Config{Cores: 1, MaxInflight: 2, Model: power.DefaultModel()})
	s.Advance(0)
	a := fixedReq(1, workload.TextCont, 1)
	b := fixedReq(2, workload.TextCont, 1)
	c := fixedReq(3, workload.TextCont, 1)
	if !s.Admit(0, a) || !s.Admit(0, b) {
		t.Fatal("admission failed below bound")
	}
	if s.Admit(0, c) {
		t.Fatal("admission above bound")
	}
	if !c.Dropped || c.DropReason == "" {
		t.Fatal("rejected request not marked dropped")
	}
	if s.Rejected() != 1 {
		t.Fatalf("rejected %d", s.Rejected())
	}
}

func TestAdmitWithoutAdvancePanics(t *testing.T) {
	s := testServer()
	defer func() {
		if recover() == nil {
			t.Fatal("admit without advance did not panic")
		}
	}()
	s.Admit(5, fixedReq(1, workload.TextCont, 1))
}

func TestAdvanceBackwardsPanics(t *testing.T) {
	s := testServer()
	s.Advance(5)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards advance did not panic")
		}
	}()
	s.Advance(1)
}

func TestPowerIdleAndLoaded(t *testing.T) {
	s := testServer()
	idle := s.PowerNow()
	if math.Abs(idle-s.Model.Idle(s.Freq())) > 1e-9 {
		t.Fatalf("idle power %g", idle)
	}
	s.Advance(0)
	for i := 0; i < 4; i++ {
		s.Admit(0, fixedReq(uint64(i), workload.CollaFilt, 10))
	}
	loaded := s.PowerNow()
	if math.Abs(loaded-s.Model.Nameplate) > 1e-6 {
		t.Fatalf("saturated Colla-Filt power %g, want nameplate %g", loaded, s.Model.Nameplate)
	}
}

func TestPowerAtPrediction(t *testing.T) {
	s := testServer()
	s.Advance(0)
	for i := 0; i < 4; i++ {
		s.Admit(0, fixedReq(uint64(i), workload.CollaFilt, 10))
	}
	lo := s.PowerAt(1.2)
	hi := s.PowerAt(2.4)
	if lo >= hi {
		t.Fatalf("PowerAt not monotone: %g >= %g", lo, hi)
	}
	if math.Abs(hi-s.PowerNow()) > 1e-9 {
		t.Fatal("PowerAt(fmax) != PowerNow at fmax")
	}
}

func TestEnergyIntegration(t *testing.T) {
	s := testServer()
	s.Advance(10) // idle for 10 s at fmax
	want := s.Model.Idle(2.4) * 10
	if math.Abs(s.EnergyJ()-want) > 1e-6 {
		t.Fatalf("energy %g, want %g", s.EnergyJ(), want)
	}
}

func TestVersionBumps(t *testing.T) {
	s := testServer()
	v0 := s.Version()
	s.Advance(0)
	s.Admit(0, fixedReq(1, workload.TextCont, 0.1))
	if s.Version() == v0 {
		t.Fatal("admit did not bump version")
	}
	v1 := s.Version()
	s.CapFreq(1.8)
	if s.Version() == v1 {
		t.Fatal("freq change did not bump version")
	}
	v2 := s.Version()
	s.CapFreq(1.8) // no-op
	if s.Version() != v2 {
		t.Fatal("no-op freq change bumped version")
	}
	at, _ := s.NextCompletion()
	s.Advance(at)
	if s.Version() == v2 {
		t.Fatal("completion did not bump version")
	}
}

func TestFreqChangeMidFlight(t *testing.T) {
	s := testServer()
	r := fixedReq(1, workload.CollaFilt, 0.2)
	s.Advance(0)
	s.Admit(0, r)
	s.Advance(0.1) // half done at fmax
	s.CapFreq(1.2) // half speed for the rest
	at, _ := s.NextCompletion()
	if math.Abs(at-0.3) > 1e-6 {
		t.Fatalf("completion %g, want 0.3 (0.1 fast + 0.2 slow)", at)
	}
}

func TestClassCounts(t *testing.T) {
	s := testServer()
	s.Advance(0)
	s.Admit(0, fixedReq(1, workload.CollaFilt, 1))
	s.Admit(0, fixedReq(2, workload.CollaFilt, 1))
	s.Admit(0, fixedReq(3, workload.KMeans, 1))
	counts := s.ClassCounts()
	if counts[workload.CollaFilt] != 2 || counts[workload.KMeans] != 1 {
		t.Fatalf("counts %v", counts)
	}
}

func TestDrainDeadline(t *testing.T) {
	s := MustNew(Config{Cores: 2, MaxInflight: 16, Model: power.DefaultModel()})
	s.Advance(0)
	s.Admit(0, fixedReq(1, workload.CollaFilt, 0.4))
	s.Admit(0, fixedReq(2, workload.CollaFilt, 0.4))
	// 0.8 core-seconds over 2 cores at fmax = 0.4 s.
	if got := s.DrainDeadline(); math.Abs(got-0.4) > 1e-9 {
		t.Fatalf("drain %g, want 0.4", got)
	}
	idle := testServer()
	if idle.DrainDeadline() != 0 {
		t.Fatal("idle drain != 0")
	}
}

func TestFactoryIntegration(t *testing.T) {
	f := workload.NewFactory(rng.New(1))
	s := testServer()
	now := 0.0
	s.Advance(now)
	for i := 0; i < 32; i++ {
		r := mkReq(f, now, workload.AliNormal)
		if !s.Admit(now, r) {
			t.Fatal("admit failed")
		}
		at, ok := s.NextCompletion()
		if !ok {
			t.Fatal("no completion scheduled")
		}
		now = at
		s.Advance(now)
	}
	if s.Completed() == 0 {
		t.Fatal("nothing completed")
	}
}

// Property: work conservation — total demand admitted equals demand served
// plus demand still in flight, for any schedule of advances.
func TestQuickWorkConservation(t *testing.T) {
	f := func(steps []uint8) bool {
		s := testServer()
		now := 0.0
		s.Advance(now)
		admitted := 0.0
		served := 0.0
		id := uint64(0)
		for _, st := range steps {
			if st%3 == 0 {
				id++
				d := float64(st%10)/100 + 0.01
				r := fixedReq(id, workload.VictimClasses()[int(st)%4], d)
				if s.Admit(now, r) {
					admitted += d
				}
			} else {
				now += float64(st%7)/50 + 0.001
				for _, r := range s.Advance(now) {
					served += r.Demand
				}
			}
		}
		inflight := 0.0
		// Finish everything off.
		for {
			at, ok := s.NextCompletion()
			if !ok {
				break
			}
			now = at
			for _, r := range s.Advance(now) {
				inflight += r.Demand
			}
		}
		return math.Abs(admitted-(served+inflight)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: power stays within [idle(fmin), nameplate] at every operating
// point reachable by arbitrary admits and caps.
func TestQuickPowerEnvelope(t *testing.T) {
	f := func(ops []uint8) bool {
		s := testServer()
		now := 0.0
		s.Advance(now)
		id := uint64(0)
		for _, op := range ops {
			switch op % 3 {
			case 0:
				id++
				s.Admit(now, fixedReq(id, workload.Class(int(op)%workload.NumClasses), 0.5))
			case 1:
				s.CapFreq(s.Model.Ladder.Level(int(op) % 13))
			case 2:
				now += 0.01
				s.Advance(now)
			}
			p := s.PowerNow()
			if p < s.Model.Idle(s.Model.Ladder.Min)-1e-9 || p > s.Model.Nameplate+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdvanceLoaded(b *testing.B) {
	s := testServer()
	s.Advance(0)
	for i := 0; i < 50; i++ {
		s.Admit(0, fixedReq(uint64(i), workload.CollaFilt, 1e12))
	}
	now := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += 0.001
		s.Advance(now)
	}
}

func TestFailAllDropsEverything(t *testing.T) {
	s := testServer()
	s.Advance(0)
	for i := 0; i < 5; i++ {
		s.Admit(0, fixedReq(uint64(i+1), workload.CollaFilt, 1))
	}
	v := s.Version()
	failed := s.FailAll(0)
	if len(failed) != 5 {
		t.Fatalf("failed %d, want 5", len(failed))
	}
	for _, r := range failed {
		if !r.Dropped || r.DropReason != "outage" {
			t.Fatal("failed request not marked as outage")
		}
	}
	if s.Inflight() != 0 {
		t.Fatal("inflight after FailAll")
	}
	if s.Version() == v {
		t.Fatal("FailAll did not bump version")
	}
	if s.Rejected() != 5 {
		t.Fatalf("rejected counter %d", s.Rejected())
	}
	// Power back to idle.
	if got := s.PowerNow(); got != s.Model.Idle(s.Freq()) {
		t.Fatalf("power %g after FailAll", got)
	}
	// Server is reusable.
	if !s.Admit(0, fixedReq(99, workload.TextCont, 0.1)) {
		t.Fatal("server unusable after FailAll")
	}
}

func TestFailAllEmptyIsNoop(t *testing.T) {
	s := testServer()
	s.Advance(1)
	v := s.Version()
	if got := s.FailAll(1); got != nil {
		t.Fatalf("FailAll on idle server returned %v", got)
	}
	if s.Version() != v {
		t.Fatal("no-op FailAll bumped version")
	}
}

func TestFailAllWithoutAdvancePanics(t *testing.T) {
	s := testServer()
	defer func() {
		if recover() == nil {
			t.Fatal("FailAll without advance did not panic")
		}
	}()
	s.FailAll(5)
}
