// E-commerce scenario: the paper's Section 6 evaluation in miniature — an
// online shop serving a blended Alibaba-like request mix is hit by a
// three-class DOPE injection; all four Table 2 schemes are compared at
// Medium-PB.
//
//	go run ./examples/ecommerce
package main

import (
	"fmt"
	"os"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/workload"
)

func main() {
	fmt.Println("E-commerce rack under a 3-class DOPE injection (Medium-PB)")
	fmt.Printf("%-10s %12s %10s %12s %14s %12s\n",
		"scheme", "meanRT(ms)", "p90(ms)", "avail", "slotsOver(%)", "dropped")

	for _, name := range []string{"capping", "shaving", "token", "anti-dope"} {
		cfg := scenario()
		scheme, err := defense.ByName(name, core.Ladder(cfg))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		cfg.Scheme = scheme
		res, err := core.RunOnce(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		dropped := res.DroppedLegit + res.DroppedAttack
		fmt.Printf("%-10s %12.1f %10.1f %12.4f %14.1f %12d\n",
			res.SchemeName, 1e3*res.MeanRT(), 1e3*res.TailRT(90),
			res.Availability(), 100*res.FracSlotsOverBudget, dropped)
	}
	fmt.Println("\nNote how Token looks fast by abandoning traffic, while Anti-DOPE")
	fmt.Println("serves everyone it can and still holds the budget.")
}

func scenario() core.Config {
	cfg := core.DefaultConfig()
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Horizon = 240
	cfg.WarmupSec = 10
	cfg.NormalRPS = 0 // the explicit mix below replaces the default stream

	// Legitimate shoppers: browsing plus organic traffic to every endpoint.
	legit := func(class workload.Class, rps float64, base workload.SourceID) core.SourceSpec {
		return core.SourceSpec{
			Source: workload.Source{
				Class: class, Origin: workload.Legit,
				Rate: workload.ConstRate(rps), Sources: 32, FirstSource: base,
			},
			RateCap: rps,
		}
	}
	cfg.ExtraSources = []core.SourceSpec{
		legit(workload.AliNormal, 60, 0),
		legit(workload.CollaFilt, 1.5, 100),
		legit(workload.KMeans, 1, 200),
		legit(workload.WordCount, 3, 300),
		legit(workload.TextCont, 8, 400),
	}

	// The adversary's recorded DOPE injection (Section 6.1).
	flood := func(class workload.Class, rps float64) attack.Spec {
		return attack.Spec{
			Name: "dope-" + class.String(), Layer: attack.ApplicationLayer,
			Class: class, RateRPS: rps, Agents: 32,
			Start: 20, Duration: cfg.Horizon - 20,
		}
	}
	cfg.Attacks = []attack.Spec{
		flood(workload.CollaFilt, 28),
		flood(workload.KMeans, 18),
		flood(workload.WordCount, 70),
	}
	return cfg
}
