// Topology analysis: where in the power-delivery tree does a DOPE attack
// bite first? This example runs an 8-server room (two racks behind
// oversubscribed PDUs, one feed) under a flood, records per-server power,
// and analyzes the tree twice — with plain spreading and with Anti-DOPE's
// suspect isolation. Spreading heats both rack PDUs; isolation concentrates
// the attack on the suspect rack, keeping the other rack (and its users)
// out of the blast radius.
//
//	go run ./examples/topology-analysis
package main

import (
	"fmt"
	"os"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/topology"
	"antidope/internal/workload"
)

func main() {
	for _, withDefense := range []bool{false, true} {
		label := "plain spreading (no defense)"
		if withDefense {
			label = "Anti-DOPE isolation"
		}
		fmt.Printf("=== %s ===\n", label)
		res := run(withDefense)
		analyze(res)
		fmt.Println()
	}
	fmt.Println("Isolation turns a facility-wide power problem into a single")
	fmt.Println("(suspect) rack's problem — the blast radius of Figure 13's design.")
}

func run(withDefense bool) *core.Result {
	cfg := core.DefaultConfig()
	cfg.Horizon = 120
	cfg.WarmupSec = 10
	cfg.Cluster.Servers = 8
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.RecordPerServer = true
	cfg.NormalRPS = 140
	if withDefense {
		ad := defense.NewAntiDope(core.Ladder(cfg))
		ad.SuspectPoolFrac = 0.5 // the suspect pool is rack 0
		cfg.Scheme = ad
	}
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 60, 32, 20, 95),
		attack.HTTPLoadTool(workload.KMeans, 40, 32, 20, 95),
	}
	res, err := core.RunOnce(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

func analyze(res *core.Result) {
	// Two racks of four 100 W servers behind 360 W PDUs (1.11x rack-level
	// oversubscription), one 700 W feed (1.03x over the PDUs).
	rack0 := topology.Rack("rack-0", 360, 100, res.PerServerPower[:4])
	rack1 := topology.Rack("rack-1", 360, 100, res.PerServerPower[4:])
	feed := topology.Facility("feed", 700, []*topology.Node{rack0, rack1})

	reports, err := topology.Analyze(feed, 0, res.Horizon, 240)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-10s %10s %10s %10s %12s\n", "level", "capacity", "peak(W)", "mean(W)", "time over")
	for _, r := range reports {
		//lint:allow floateq -- leaf reports carry an exact zero capacity, not a measure
		if r.CapacityW == 0 || len(r.Name) > 10 { // skip the per-server leaves
			continue
		}
		fmt.Printf("%-10s %10.0f %10.1f %10.1f %12s\n",
			r.Name, r.CapacityW, r.PeakW, r.MeanW,
			fmt.Sprintf("%.1f%%", 100*r.FracOver))
	}
	if trip, ok := topology.FirstTrip(reports); ok {
		fmt.Printf("first level over capacity: %s at t=%.0fs (peak excess %.1f W)\n",
			trip.Name, trip.FirstOverAt, trip.PeakOverW)
	} else {
		fmt.Println("no level ever exceeded its capacity")
	}
}
