// Firewall tuning: the Section 3.4 trade-off. A stricter per-source rate
// threshold narrows the DOPE region but starts harming legitimate bursty
// clients; a looser one lets higher-power floods through untouched. This
// example sweeps the deflate-style threshold and reports, for each setting,
// the adaptive attacker's achieved damage and the legitimate collateral.
//
//	go run ./examples/firewall-tuning
package main

import (
	"fmt"
	"os"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
)

func main() {
	thresholds := []float64{25, 50, 100, 150, 300}

	fmt.Println("Firewall threshold sweep vs the adaptive DOPE attacker (Medium-PB, no power defense)")
	fmt.Printf("%12s %14s %16s %14s %16s %12s\n",
		"thresh(rps)", "fw bans", "legit banned", "overBudget(kJ)", "final atk rps", "atk agents")

	for _, th := range thresholds {
		cfg := core.DefaultConfig()
		cfg.Cluster.Budget = cluster.MediumPB
		cfg.Horizon = 480
		cfg.NormalRPS = 120
		// Fewer legit sources -> burstier per-source rates, so strict
		// thresholds produce visible collateral.
		cfg.NormalSources = 4
		cfg.Firewall.ThresholdRPS = th
		d := attack.DefaultDopeConfig()
		// A small opening botnet so strict thresholds actually catch the
		// early probes and force the recruit-and-back-off adaptation.
		d.Agents = 2
		cfg.Dope = &d
		cfg.DopeStart = 20

		res, err := core.RunOnce(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		finalRPS, finalAgents := 0.0, 0
		if n := len(res.DopeTrace); n > 0 {
			finalRPS = res.DopeTrace[n-1].RPS
			finalAgents = res.DopeTrace[n-1].Agents
		}
		fmt.Printf("%12.0f %14d %16d %14.1f %16.0f %12d\n",
			th, res.DroppedByReason["firewall-ban"],
			res.LegitDroppedByReason["firewall-ban"],
			res.OverBudgetJ/1e3, finalRPS, finalAgents)
	}
	fmt.Println("\nThe dilemma of Section 3.4/5.4: thresholds loose enough to spare")
	fmt.Println("legitimate clients are blind to DOPE (full over-budget damage);")
	fmt.Println("thresholds strict enough to inconvenience the attacker ban the")
	fmt.Println("legitimate population wholesale. Rate limiting cannot see power.")
}
