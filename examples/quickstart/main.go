// Quickstart: build the paper's scaled-down rack, flood it with a
// power-oriented (DOPE) workload, and defend it with Anti-DOPE.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/workload"
)

func main() {
	// A 4-node, 400 W rack oversubscribed to an 85% power budget.
	cfg := core.DefaultConfig()
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Horizon = 180
	cfg.NormalRPS = 100 // legitimate shoppers

	// The adversary: low-rate, high-power requests against the recommender
	// endpoint — invisible to the firewall, brutal to the power budget.
	cfg.Attacks = []attack.Spec{{
		Name:     "dope",
		Layer:    attack.ApplicationLayer,
		Class:    workload.CollaFilt,
		RateRPS:  80,
		Agents:   32, // <2 req/s per agent: far under any rate threshold
		Start:    30,
		Duration: 150,
	}}

	fmt.Println("--- undefended (DVFS capping only) ---")
	cfg.Scheme = defense.NewCapping(core.Ladder(cfg))
	run(cfg)

	fmt.Println("\n--- defended (Anti-DOPE: PDF isolation + RPM) ---")
	cfg.Scheme = defense.NewAntiDope(core.Ladder(cfg))
	run(cfg)
}

func run(cfg core.Config) {
	res, err := core.RunOnce(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("legit mean RT %.1f ms, p90 %.1f ms, availability %.3f; peak power %.0f W (budget %.0f W)\n",
		1e3*res.MeanRT(), 1e3*res.TailRT(90), res.Availability(), res.PeakPowerW(), res.BudgetW)
}
