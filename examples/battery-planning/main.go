// Battery planning: how much UPS autonomy does a peak-shaving design need
// to survive a DOPE attack of a given duration? This example sweeps UPS
// sizing against attack lengths under the Shaving scheme and reports when
// the battery is exhausted — the capacity-planning question Section 6.4
// raises ("any power-efficient design must ensure that batteries are
// enough for handling unexpected emergencies").
//
//	go run ./examples/battery-planning
package main

import (
	"fmt"
	"os"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/workload"
)

func main() {
	autonomies := []float64{30, 60, 120, 240, 480} // seconds at the gap draw
	durations := []float64{60, 120, 300}           // attack lengths

	fmt.Println("Shaving scheme, Medium-PB: does the UPS survive a DOPE peak?")
	fmt.Printf("%-22s", "autonomy \\ attack")
	for _, d := range durations {
		fmt.Printf(" %8.0fs", d)
	}
	fmt.Println()

	for _, auto := range autonomies {
		fmt.Printf("%-20.0fs ", auto)
		for _, dur := range durations {
			res := run(auto, dur)
			min := res.MinBatterySoC()
			cell := fmt.Sprintf("%3.0f%%", min*100)
			if min <= 0.02 {
				cell = "DEAD"
			}
			fmt.Printf(" %9s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\ncells: minimum state of charge reached (DEAD = exhausted, DVFS")
	fmt.Println("falls back and legitimate users eat the throttling).")
}

func run(autonomySec, attackDur float64) *core.Result {
	cfg := core.DefaultConfig()
	cfg.Cluster.Budget = cluster.MediumPB
	cfg.Cluster.BatteryAutonomySec = autonomySec
	// Size the UPS against the oversubscription gap, the relevant draw for
	// peak shaving (see DESIGN.md).
	cfg.Cluster.BatterySustainW = 0.2 * float64(cfg.Cluster.Servers) * cfg.Cluster.Model.Nameplate
	cfg.Horizon = attackDur + 60
	cfg.NormalRPS = 100
	cfg.Scheme = defense.NewShaving(core.Ladder(cfg))
	cfg.Attacks = []attack.Spec{{
		Name: "dope", Layer: attack.ApplicationLayer,
		Class: workload.CollaFilt, RateRPS: 80, Agents: 32,
		Start: 30, Duration: attackDur,
	}}
	res, err := core.RunOnce(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}
