// Cooling attack: the third face of DOPE. The paper defines DOPE as
// targeting "energy, power, and cooling"; this example shows the cooling
// face — a flood that never violates the power budget (Normal-PB) but
// slowly overheats a room whose CRAC plant is provisioned as aggressively
// as the power feed. Minutes after onset the hardware's emergency thermal
// throttle fires; Anti-DOPE's isolation keeps the heat inside the cooling
// envelope so the emergency never starts.
//
//	go run ./examples/cooling-attack
package main

import (
	"fmt"
	"os"

	"antidope/internal/attack"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/thermal"
	"antidope/internal/workload"
)

func main() {
	fmt.Println("Sustained DOPE heat vs an undersized CRAC (Normal-PB: the power budget never binds)")
	for _, withDefense := range []bool{false, true} {
		res := run(withDefense)
		label := "undefended"
		if withDefense {
			label = "Anti-DOPE "
		}
		_, maxT := res.MaxTempC.Max()
		fmt.Printf("\n--- %s ---\n", label)
		fmt.Printf("temp  [max %4.1f °C] %s\n", maxT, res.MaxTempC.Sparkline(60))
		fmt.Printf("power [peak %3.0f W] %s\n", res.PeakPowerW(), res.Power.Sparkline(60))
		fmt.Printf("thermal throttle engaged in %.1f%% of slots; legit p90 %.1f ms\n",
			100*res.FracSlotsThermal, 1e3*res.TailRT(90))
	}
	fmt.Println("\nThe power plane is clean in both runs — only the thermometer")
	fmt.Println("sees this attack, and only placement prevents it.")
}

func run(withDefense bool) *core.Result {
	cfg := core.DefaultConfig()
	cfg.Horizon = 540
	cfg.WarmupSec = 10
	cfg.NormalRPS = 100
	cfg.Thermal = thermal.Config{Enabled: true, CRACCapacityW: 320, RiseCPerW: 0.12}
	if withDefense {
		cfg.Scheme = defense.NewAntiDope(core.Ladder(cfg))
	}
	cfg.Attacks = []attack.Spec{
		attack.HTTPLoadTool(workload.CollaFilt, 80, 32, 30, 480),
		attack.HTTPLoadTool(workload.KMeans, 40, 32, 30, 480),
	}
	res, err := core.RunOnce(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}
