// Package antidope's repository-root benchmarks regenerate every table and
// figure of the paper's evaluation (see the experiment index in DESIGN.md).
// Each benchmark iteration executes the figure's full experiment in Quick
// mode; run the cmd/paperbench binary (without -quick) for the
// full-fidelity numbers recorded in EXPERIMENTS.md.
//
//	go test -bench=. -benchmem
package antidope

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"antidope/internal/attack"
	"antidope/internal/cluster"
	"antidope/internal/core"
	"antidope/internal/defense"
	"antidope/internal/experiments"
	"antidope/internal/workload"
)

func opts(i int) experiments.Options {
	return experiments.Options{Seed: uint64(2019 + i), Quick: true}
}

// BenchmarkTable1WorkloadCatalog exercises Table 1: minting one request of
// every catalog class through the demand sampler.
func BenchmarkTable1WorkloadCatalog(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Horizon = 30
	cfg.WarmupSec = 1
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		if _, err := core.RunOnce(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Schemes runs one short attacked window under each of the
// four Table 2 schemes.
func BenchmarkTable2Schemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, scheme := range defense.Evaluated(core.Ladder(core.DefaultConfig())) {
			cfg := core.DefaultConfig()
			cfg.Horizon = 40
			cfg.Cluster.Budget = cluster.MediumPB
			cfg.Scheme = scheme
			cfg.Seed = uint64(i + 1)
			cfg.Attacks = []attack.Spec{{
				Name: "bench", Layer: attack.ApplicationLayer,
				Class: workload.CollaFilt, RateRPS: 60, Agents: 16,
				Start: 5, Duration: 35,
			}}
			if _, err := core.RunOnce(cfg); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkFig3PowerProfile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if !r.AppLayerTops() {
			b.Fatal("fig3 shape lost")
		}
	}
}

func BenchmarkFig4PowerVsRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.MeanPower) == 0 {
			b.Fatal("fig4 empty")
		}
	}
}

func BenchmarkFig5PowerCDF(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.CDFs) == 0 {
			b.Fatal("fig5 empty")
		}
	}
}

func BenchmarkFig6VFReduction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.VFReduction) == 0 {
			b.Fatal("fig6 empty")
		}
	}
}

func BenchmarkFig7ServiceQuality(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.MeanRT) == 0 {
			b.Fatal("fig7 empty")
		}
	}
}

func BenchmarkFig8ServiceTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Slowdown) == 0 {
			b.Fatal("fig8 empty")
		}
	}
}

func BenchmarkFig9Availability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Availability) == 0 {
			b.Fatal("fig9 empty")
		}
	}
}

func BenchmarkFig10Firewall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.With) == 0 {
			b.Fatal("fig10 empty")
		}
	}
}

func BenchmarkFig11DopeRegion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.MinViolatingRPS) == 0 {
			b.Fatal("fig11 empty")
		}
	}
}

func BenchmarkFig12AttackAlgorithm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig12(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Trace) == 0 {
			b.Fatal("fig12 empty")
		}
	}
}

func BenchmarkFig15AntiDope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig15(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if r.PowerUnderAttack.Len() == 0 {
			b.Fatal("fig15 empty")
		}
	}
}

func BenchmarkFig16MeanResponse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunEvalGrid(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if g.Fig16() == nil {
			b.Fatal("fig16 empty")
		}
	}
}

func BenchmarkFig17TailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunEvalGrid(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if g.Fig17() == nil {
			b.Fatal("fig17 empty")
		}
	}
}

func BenchmarkFig18Battery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig18(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.SoC) == 0 {
			b.Fatal("fig18 empty")
		}
	}
}

func BenchmarkFig19Energy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunEvalGrid(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if g.Fig19() == nil {
			b.Fatal("fig19 empty")
		}
	}
}

// BenchmarkAblation runs the Anti-DOPE design ablation (DESIGN.md).
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablation(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.MeanRT) == 0 {
			b.Fatal("ablation empty")
		}
	}
}

// BenchmarkOutage runs the breaker-trip experiment (Figure 1's motivation).
func BenchmarkOutage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Outage(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Outages) == 0 {
			b.Fatal("outage empty")
		}
	}
}

// BenchmarkPulse runs the yo-yo attack stress.
func BenchmarkPulse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Pulse(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.P90) == 0 {
			b.Fatal("pulse empty")
		}
	}
}

// BenchmarkScale runs the rack-to-room scale-out sweep.
func BenchmarkScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Scale(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Sizes) == 0 {
			b.Fatal("scale empty")
		}
	}
}

// BenchmarkCapacity runs the SLA capacity planner per scheme.
func BenchmarkCapacity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Capacity(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.RPS) == 0 {
			b.Fatal("capacity empty")
		}
	}
}

// BenchmarkDetection runs the power-telemetry detection-latency sweep.
func BenchmarkDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Detection(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Delay) == 0 {
			b.Fatal("detection empty")
		}
	}
}

// BenchmarkThermal runs the cooling-attack experiment.
func BenchmarkThermal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Thermal(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.HotFrac) == 0 {
			b.Fatal("thermal empty")
		}
	}
}

// BenchmarkRobustness runs the multi-seed headline replication.
func BenchmarkRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Robustness(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.MeanImpr) == 0 {
			b.Fatal("robustness empty")
		}
	}
}

// BenchmarkResilience runs the fault-intensity degradation sweep.
func BenchmarkResilience(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Resilience(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		if len(r.SLA) == 0 {
			b.Fatal("resilience empty")
		}
	}
}

// BenchmarkAllQuick runs the entire quick suite twice per configuration —
// once sequentially, once with the harness's default worker count — so a
// single -bench run shows the parallel speedup. On a multi-core runner the
// parallel case should finish at least ~2x faster at 4 workers; the printed
// tables are byte-identical either way (see TestParallelEquivalence).
func BenchmarkAllQuick(b *testing.B) {
	configs := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		configs = append(configs, n)
	}
	for _, workers := range configs {
		name := "sequential"
		if workers != 1 {
			name = fmt.Sprintf("parallel-%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				o := opts(i)
				o.Parallel = workers
				if err := experiments.All(o, io.Discard); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeadline reproduces the abstract's 44% / 68.1% comparison.
func BenchmarkHeadline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.RunEvalGrid(opts(i))
		if err != nil {
			b.Fatal(err)
		}
		mean, p90, _ := g.Headline()
		if mean <= 0 || p90 <= 0 {
			b.Fatalf("headline regression: mean %.2f p90 %.2f", mean, p90)
		}
	}
}
